"""The SuperPin serve daemon: socket front end + shared worker pool.

One asyncio event loop owns every piece of scheduling state (job
table, tenant queues, subscriber lists); SuperPin runs execute on a
bounded :class:`~concurrent.futures.ThreadPoolExecutor` so the loop
stays responsive while jobs run.  A thread is the right isolation unit
here — not a process — because each *job* already fans its slice phase
out over ``-spworkers`` worker processes, and because the run's
``on_progress`` callback must hand events back to the loop
(``call_soon_threadsafe``), which a process boundary would forbid.

Every job runs against the daemon's persistent trace store
(``<state_dir>/trace_store``) unless its switches name their own, which
is the service's economics: the first submission of a program pays the
pilot compile, every later identical submission — any tenant, any
connection, even after a daemon restart — starts warm with zero pilot
compiles (``pin.cache.persistent_hits`` > 0 on its counters).

Durability: accepted submissions are fsynced to ``<state_dir>/
jobs.jsonl`` before the client hears "queued", so a SIGKILLed daemon
restarted on the same state dir re-enqueues everything it had accepted
but not finished (:func:`repro.serve.jobs.recover_jobs`).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
from concurrent.futures import ThreadPoolExecutor

from ..fsutil import atomic_write
from ..obs.metrics import metrics_for
from .jobs import (Job, JobCancelled, JobLog, JobQueue, QueueFull,
                   recover_jobs)
from .protocol import (encode_line, decode_line, MAX_LINE_BYTES,
                       ProtocolError, validate_request)

#: Events a subscriber queue can carry; ``done``/``failed`` terminate.
TERMINAL_EVENTS = ("done", "failed")


class ServeDaemon:
    """One daemon instance: queue, pool, socket server, durable log."""

    def __init__(self, socket_path, state_dir, workers: int = 1,
                 max_depth: int = 64, spmetrics: bool = True):
        self.socket_path = os.fspath(socket_path)
        self.state_dir = os.fspath(state_dir)
        self.workers = workers
        self.queue = JobQueue(max_depth=max_depth)
        self.jobs: dict[str, Job] = {}
        self.metrics = metrics_for(spmetrics)
        self.trace_store_dir = os.path.join(self.state_dir, "trace_store")
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._next_id = 1
        self._running = 0
        self._log: JobLog | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._kick: asyncio.Event | None = None

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> None:
        """Serve until a ``shutdown`` request arrives (blocking)."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        os.makedirs(self.state_dir, exist_ok=True)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._kick = asyncio.Event()
        self._recover()
        self._log = JobLog(os.path.join(self.state_dir, "jobs.jsonl"))
        self._executor = ThreadPoolExecutor(
            max_workers=max(self.workers, 1),
            thread_name_prefix="serve-job")
        if os.path.exists(self.socket_path):
            # A dead daemon's socket file refuses rebinding; since we
            # were launched to own this path, a leftover is stale.
            os.unlink(self.socket_path)
        server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path,
            limit=MAX_LINE_BYTES + 1024)
        scheduler = asyncio.ensure_future(self._scheduler())
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            scheduler.cancel()
            await self._drain_running()
            self._executor.shutdown(wait=True)
            self._write_exports()
            self._log.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _recover(self) -> None:
        """Re-enqueue jobs a dead daemon accepted but never finished."""
        recovered = recover_jobs(os.path.join(self.state_dir,
                                              "jobs.jsonl"))
        for job in recovered:
            self.jobs[job.job_id] = job
            try:
                number = int(job.job_id.lstrip("j"))
            except ValueError:
                number = 0
            self._next_id = max(self._next_id, number + 1)
            try:
                self.queue.push(job)
                self.metrics.inc("serve.jobs.recovered")
            except QueueFull:
                job.state = "failed"
                job.error = "queue full after crash recovery"

    async def _drain_running(self) -> None:
        """Let in-flight jobs finish before the process exits."""
        while self._running > 0:
            await asyncio.sleep(0.02)

    def _write_exports(self) -> None:
        """Shutdown artifact: daemon counters + every job's record."""
        snapshot = {
            "counters": dict(self.metrics.counters),
            "trace_store": sorted(os.listdir(self.trace_store_dir))
            if os.path.isdir(self.trace_store_dir) else [],
            "jobs": [self.jobs[job_id].public()
                     for job_id in sorted(self.jobs)],
        }
        atomic_write(os.path.join(self.state_dir, "metrics.json"),
                     (json.dumps(snapshot, indent=2, sort_keys=True)
                      + "\n").encode("utf-8"))

    # -- scheduling --------------------------------------------------------

    async def _scheduler(self) -> None:
        """Dispatch queued jobs whenever pool slots free up.

        ``workers == 0`` is the accept-only mode (used by tests and for
        drain-before-upgrade operation): jobs queue durably, nothing
        dispatches.
        """
        while True:
            self._kick.clear()
            while (self.workers > 0 and self._running < self.workers):
                job = self.queue.pop()
                if job is None:
                    break
                self._dispatch(job)
            await self._kick.wait()

    def _dispatch(self, job: Job) -> None:
        job.state = "running"
        self._running += 1
        self.metrics.inc("serve.jobs.dispatched")
        self._emit(job.job_id, {"event": "state", "job_id": job.job_id,
                                "state": "running"})
        future = self._loop.run_in_executor(self._executor,
                                            self._run_job, job)
        future.add_done_callback(
            lambda fut, job=job: self._loop.call_soon_threadsafe(
                self._job_finished, job, fut))

    def _run_job(self, job: Job) -> dict:
        """Execute one job on a pool thread; returns the result record."""

        def on_progress(event: str, payload: dict) -> None:
            if job.cancel_flag.is_set():
                raise JobCancelled("cancelled")
            self._loop.call_soon_threadsafe(
                self._emit, job.job_id,
                {"event": "progress", "job_id": job.job_id,
                 "kind": event, "payload": payload})

        report, tool = run_job_spec(job.spec, self.trace_store_dir,
                                    on_progress=on_progress)
        return job_result(report, tool)

    def _job_finished(self, job: Job, future) -> None:
        self._running -= 1
        error = future.exception()
        if error is None:
            job.state = "done"
            job.result = future.result()
            self.metrics.inc("serve.jobs.completed")
            self._emit(job.job_id,
                       {"event": "metrics", "job_id": job.job_id,
                        "counters": job.result.get("counters", {})})
            self._emit(job.job_id, {"event": "done",
                                    "job_id": job.job_id,
                                    "result": job.result})
        else:
            job.state = "failed"
            job.error = str(error) or type(error).__name__
            counter = ("serve.jobs.cancelled"
                       if isinstance(error, JobCancelled)
                       else "serve.jobs.failed")
            self.metrics.inc(counter)
            self._emit(job.job_id, {"event": "failed",
                                    "job_id": job.job_id,
                                    "error": job.error})
        self._log.finished(job)
        self._kick.set()

    # -- events ------------------------------------------------------------

    def _emit(self, job_id: str, event: dict) -> None:
        for queue in self._subscribers.get(job_id, []):
            queue.put_nowait(event)
        if event.get("event") in TERMINAL_EVENTS:
            self._subscribers.pop(job_id, None)

    def _subscribe(self, job_id: str) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def _terminal_event(self, job: Job) -> dict:
        if job.state == "done":
            return {"event": "done", "job_id": job.job_id,
                    "result": job.result}
        return {"event": "failed", "job_id": job.job_id,
                "error": job.error or "failed"}

    # -- the socket front end ----------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(
                        {"ok": False, "code": "protocol",
                         "error": "oversize frame"}))
                    break
                if not line:
                    break
                try:
                    request = decode_line(line)
                    op = validate_request(request)
                except ProtocolError as exc:
                    writer.write(encode_line({"ok": False,
                                              "code": "protocol",
                                              "error": str(exc)}))
                    break
                if not await self._handle_request(op, request, writer):
                    break
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, RuntimeError):
                pass

    async def _handle_request(self, op: str, request: dict,
                              writer) -> bool:
        """Serve one request; False closes the connection."""
        if op == "ping":
            writer.write(encode_line({"ok": True, "pong": True}))
            return True
        if op == "shutdown":
            writer.write(encode_line({"ok": True, "stopping": True}))
            await writer.drain()
            self._stop.set()
            self._kick.set()
            return False
        if op == "status":
            writer.write(encode_line(self._status(request.get("job_id"))))
            return True
        if op == "cancel":
            writer.write(encode_line(self._cancel(request["job_id"])))
            return True
        # submit / watch, both possibly streaming.
        if op == "submit":
            job, response = self._submit(request)
            writer.write(encode_line(response))
            if job is None or not request.get("stream", True):
                return True
            queue = self._subscribe(job.job_id)
            if job.finished:
                queue.put_nowait(self._terminal_event(job))
            await self._stream(queue, writer)
            return True
        job = self.jobs.get(request["job_id"])
        if job is None:
            writer.write(encode_line({"ok": False, "code": "unknown_job",
                                      "error": "no such job"}))
            return True
        writer.write(encode_line({"ok": True, "job": job.public()}))
        if job.finished:
            writer.write(encode_line(self._terminal_event(job)))
            return True
        await self._stream(self._subscribe(job.job_id), writer)
        return True

    async def _stream(self, queue: asyncio.Queue, writer) -> None:
        """Forward a job's events until its terminal event."""
        while True:
            getter = asyncio.ensure_future(queue.get())
            stopper = asyncio.ensure_future(self._stop.wait())
            done, _pending = await asyncio.wait(
                {getter, stopper},
                return_when=asyncio.FIRST_COMPLETED)
            if getter not in done:
                getter.cancel()
                stopper.cancel()
                return
            stopper.cancel()
            event = getter.result()
            writer.write(encode_line(event))
            await writer.drain()
            if event.get("event") in TERMINAL_EVENTS:
                return

    # -- request implementations -------------------------------------------

    def _submit(self, request: dict):
        spec = request["job"]
        tenant = request.get("tenant", "default")
        problem = check_job_spec(spec)
        if problem is not None:
            self.metrics.inc("serve.jobs.rejected")
            return None, {"ok": False, "code": "bad_spec",
                          "error": problem}
        job = Job(job_id=f"j{self._next_id:04d}", tenant=tenant,
                  spec=spec)
        try:
            self.queue.push(job)
        except QueueFull as exc:
            self.metrics.inc("serve.jobs.rejected")
            return None, {"ok": False, "code": "queue_full",
                          "error": str(exc)}
        self._next_id += 1
        self.jobs[job.job_id] = job
        # Durable before visible: the submit line is fsynced before the
        # client hears "queued", so an accepted job survives SIGKILL.
        self._log.submitted(job)
        self.metrics.inc("serve.jobs.submitted")
        self._kick.set()
        return job, {"ok": True, "job_id": job.job_id, "state": "queued"}

    def _cancel(self, job_id: str) -> dict:
        job = self.jobs.get(job_id)
        if job is None:
            return {"ok": False, "code": "unknown_job",
                    "error": "no such job"}
        if job.finished:
            return {"ok": True, "job_id": job_id, "state": job.state,
                    "already_finished": True}
        if job.state == "queued" and self.queue.remove(job):
            job.state = "failed"
            job.error = "cancelled"
            self.metrics.inc("serve.jobs.cancelled")
            self._log.finished(job)
            self._emit(job_id, self._terminal_event(job))
            return {"ok": True, "job_id": job_id, "state": "failed"}
        # Running: the flag preempts the job at its next progress event.
        job.cancel_flag.set()
        return {"ok": True, "job_id": job_id, "state": "cancelling"}

    def _status(self, job_id: str | None) -> dict:
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                return {"ok": False, "code": "unknown_job",
                        "error": "no such job"}
            return {"ok": True, "job": job.public()}
        return {
            "ok": True,
            "daemon": {
                "workers": self.workers,
                "running": self._running,
                "queue_depth": self.queue.depth(),
                "queue_depths": self.queue.depths(),
                "max_depth": self.queue.max_depth,
                "counters": dict(self.metrics.counters),
            },
            "jobs": [self.jobs[jid].public() for jid in sorted(self.jobs)],
        }


def check_job_spec(spec: dict) -> str | None:
    """Semantic validation beyond the protocol shape; None when fine."""
    from ..tools import TOOLS
    from ..workloads import BENCHMARK_NAMES
    tool = spec.get("tool", "icount2")
    if tool not in TOOLS:
        return f"unknown tool {tool!r}"
    workload = spec.get("workload")
    if workload is not None and workload not in BENCHMARK_NAMES:
        return f"unknown workload {workload!r}"
    try:
        build_job_config(spec, None)
    except Exception as exc:
        return f"bad switches: {exc}"
    return None


def build_job_config(spec: dict, trace_store_dir: str | None):
    """A job's :class:`SuperPinConfig` from its switches list.

    The daemon forces metrics on (clients consume the counters) and
    points jobs without their own ``-sptracestore`` at the daemon's
    shared store — the cross-run warm tier is the service's whole
    point, so it is the default, not an opt-in.
    """
    from ..superpin import parse_switches, SuperPinConfig
    switches = list(spec.get("switches", []))
    config = parse_switches(switches) if switches else SuperPinConfig()
    overrides = {"spmetrics": True}
    if config.sptracestore is None and trace_store_dir is not None:
        overrides["sptracestore"] = trace_store_dir
    return dataclasses.replace(config, **overrides)


def run_job_spec(spec: dict, trace_store_dir: str | None,
                 on_progress=None):
    """Run one job spec to completion; returns ``(report, tool)``.

    Program source is either a suite workload (built at the configured
    clock rate and scale) or inline assembly; the kernel seed comes
    from the spec so identical submissions are identical runs — which
    is what makes the second one a guaranteed trace-store hit.
    """
    from ..isa import assemble
    from ..machine import Kernel
    from ..superpin import run_superpin
    from ..tools import TOOLS
    from ..workloads import build
    config = build_job_config(spec, trace_store_dir)
    if spec.get("workload") is not None:
        built = build(spec["workload"], clock_hz=config.clock_hz,
                      scale=spec.get("scale", 0.25))
        program = built.program
    else:
        program = assemble(spec["asm"], name="<submitted>")
    tool = TOOLS[spec.get("tool", "icount2")]()
    report = run_superpin(program, tool, config,
                          kernel=Kernel(seed=spec.get("seed", 42)),
                          on_progress=on_progress)
    return report, tool


def job_result(report, tool) -> dict:
    """The client-visible summary of one finished run."""
    pilot_cold = 0
    if report.slices:
        pilot = report.slices[0]
        pilot_cold = pilot.compiles - pilot.warm_starts
    counters = dict(report.metrics.counters) if report.metrics else {}
    return {
        "exit_code": report.exit_code,
        "num_slices": report.num_slices,
        "all_exact": report.all_exact,
        "degraded_slices": list(report.degraded_slices),
        "tool_report": tool.report(),
        "pilot_cold_compiles": pilot_cold,
        "counters": counters,
    }
