"""ASCII rendering of figure data: tables and horizontal bar charts."""

from __future__ import annotations

from .figures import FigureData


def format_table(headers: list[str], rows: list[list],
                 indent: str = "  ") -> str:
    """Render a fixed-width table with right-aligned numeric columns."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(row[i]) for row in cells), default=0))
              for i in range(len(headers))]
    lines = [indent + "  ".join(h.ljust(widths[i])
                                for i, h in enumerate(headers))]
    lines.append(indent + "  ".join("-" * w for w in widths))
    for r, row in enumerate(cells):
        lines.append(indent + "  ".join(
            cell.rjust(widths[i]) if _is_numeric(rows[r][i])
            else cell.ljust(widths[i])
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def bar_chart(labels: list[str], values: list[float], width: int = 44,
              unit: str = "", indent: str = "  ") -> str:
    """Render a horizontal bar chart (one bar per label)."""
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{indent}{label.ljust(label_width)} "
                     f"{bar} {_fmt(value)}{unit}")
    return "\n".join(lines)


def stacked_chart(labels: list[str], series: dict[str, list[float]],
                  width: int = 50, indent: str = "  ") -> str:
    """Render stacked horizontal bars (Figure 6's breakdown shape)."""
    glyphs = {"native": "=", "fork_others": "f", "sleep": "z",
              "pipeline": "p"}
    totals = [sum(values[i] for values in series.values())
              for i in range(len(labels))]
    peak = max(totals) if totals else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = [indent + "legend: " + "  ".join(
        f"{glyph}={name}" for name, glyph in glyphs.items()
        if name in series)]
    for i, label in enumerate(labels):
        bar = ""
        for name, values in series.items():
            glyph = glyphs.get(name, "?")
            bar += glyph * round(values[i] / peak * width)
        lines.append(f"{indent}{label.ljust(label_width)} {bar} "
                     f"{_fmt(totals[i])}")
    return "\n".join(lines)


def gantt_chart(timing, width: int = 64, indent: str = "  ") -> str:
    """Render the run's schedule as ASCII — the paper's Figure 1.

    One row for the master and one per slice.  Glyphs: ``=`` master
    running, ``z`` master stalled (aggregate, shown in the legend),
    ``.`` slice forked but sleeping (waiting for the next signature),
    ``#`` slice running under instrumentation, ``|`` merge point.
    """
    spans = timing.spans
    total = max(timing.total_cycles, 1.0)

    def column(cycles: float) -> int:
        return min(width - 1, int(cycles / total * width))

    lines = [indent + "legend: ==master  .=sleeping  #=running  |=merged"]
    master = ["="] * column(timing.master_finish_cycles)
    master += [" "] * (width - len(master))
    label_width = max(6, len(f"S{len(spans)}+"))
    lines.append(f"{indent}{'master'.ljust(label_width)} "
                 f"{''.join(master)}")
    for span in spans:
        row = [" "] * width
        fork_col = column(span.forked_at)
        run_col = column(span.runnable_at)
        done_col = column(span.completed_at)
        merge_col = column(span.merged_at)
        for i in range(fork_col, run_col):
            row[i] = "."
        for i in range(run_col, max(run_col + 1, done_col)):
            row[i] = "#"
        row[merge_col] = "|"
        lines.append(f"{indent}{f'S{span.index + 1}+'.ljust(label_width)} "
                     f"{''.join(row)}")
    if timing.sleep_cycles > 0:
        percent = timing.sleep_cycles / total * 100
        lines.append(f"{indent}(master stalled for "
                     f"{percent:.0f}% of the run)")
    return "\n".join(lines)


def render_figure(data: FigureData) -> str:
    """Full ASCII rendering of one figure (table + chart + notes)."""
    parts = [f"Figure {data.figure}: {data.title}", ""]
    parts.append(format_table(data.headers, data.rows))
    parts.append("")
    chart = _chart_for(data)
    if chart:
        parts.append(chart)
        parts.append("")
    for note in data.notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)


def _chart_for(data: FigureData) -> str | None:
    if data.figure in ("3", "5"):
        labels = data.column("benchmark")
        return bar_chart(labels, data.column("superpin_%"), unit="%")
    if data.figure == "4":
        return bar_chart(data.column("benchmark"),
                         data.column("speedup_x"), unit="x")
    if data.figure == "6":
        labels = [f"{s}s" for s in data.column("timeslice_s")]
        series = {name: data.column(name)
                  for name in ("native", "fork_others", "sleep",
                               "pipeline")}
        return stacked_chart(labels, series)
    if data.figure == "7":
        return bar_chart([str(v) for v in data.column("max_slices")],
                         data.column("runtime_s"), unit="s")
    return None


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".") \
            if value != int(value) else str(int(value))
    return str(value)


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
