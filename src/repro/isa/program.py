"""Program images.

A :class:`Program` is the output of the assembler and the input of the
loader: a set of non-overlapping word segments plus an entry point and a
symbol table.  It is the moral equivalent of a statically linked ELF image
for the toy machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import LoaderError


@dataclass(frozen=True)
class Segment:
    """A contiguous run of initialized words at ``base``."""

    base: int
    words: tuple[int, ...]
    name: str = ""

    @property
    def end(self) -> int:
        """One past the last word of the segment."""
        return self.base + len(self.words)

    def overlaps(self, other: "Segment") -> bool:
        return self.base < other.end and other.base < self.end


@dataclass
class Program:
    """An assembled, loadable program image."""

    segments: list[Segment] = field(default_factory=list)
    entry: int = 0
    #: Symbol name -> word address.
    symbols: dict[str, int] = field(default_factory=dict)
    #: Address range [text_base, text_end) holding code, for tooling.
    text_base: int = 0
    text_end: int = 0
    source_name: str = "<asm>"

    def add_segment(self, segment: Segment) -> None:
        """Append ``segment``, rejecting overlap with existing segments."""
        for existing in self.segments:
            if segment.overlaps(existing):
                raise LoaderError(
                    f"segment {segment.name!r} [{segment.base:#x}, "
                    f"{segment.end:#x}) overlaps {existing.name!r} "
                    f"[{existing.base:#x}, {existing.end:#x})")
        self.segments.append(segment)

    @property
    def load_end(self) -> int:
        """Highest address used by any segment (heap starts here)."""
        return max((seg.end for seg in self.segments), default=0)

    def symbol(self, name: str) -> int:
        """Look up a symbol address, raising :class:`KeyError` if missing."""
        return self.symbols[name]

    def word_count(self) -> int:
        """Total number of initialized words across all segments."""
        return sum(len(seg.words) for seg in self.segments)
