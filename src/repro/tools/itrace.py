"""Instruction-address tracer.

The paper's example of merge-by-append (§4.5): "if we are tracing
instructions, the slice output will be buffered, then appended to the
output during merging."  Slice buffers concatenate in slice order via a
CONCAT-mode shared area, so the merged SuperPin trace is *identical* to
the serial Pin trace — an equality the integration tests assert.
"""

from __future__ import annotations

from ..pin.args import IARG_END, IARG_INST_PTR, IPOINT_BEFORE
from ..pin.pintool import Pintool
from ..superpin.sharedmem import AutoMerge


class ITrace(Pintool):
    """Records the address of every executed instruction."""

    name = "itrace"

    def __init__(self, max_entries: int = 0):
        #: 0 means unlimited; otherwise the trace is truncated (the tool
        #: keeps counting, it just stops buffering).
        self.max_entries = max_entries
        self.buffer: list[int] = []
        self.dropped = 0
        self.shared = None

    def record(self, address: int) -> None:
        if self.max_entries and len(self.buffer) >= self.max_entries:
            self.dropped += 1
            return
        self.buffer.append(address)

    def tool_reset(self, slice_num: int) -> None:
        # In place: the buffer object is registered as the auto-merge
        # local; rebinding the attribute would orphan the registration.
        self.buffer.clear()
        self.dropped = 0

    def setup(self, sp) -> None:
        sp.SP_Init(self.tool_reset)
        area = sp.SP_CreateSharedArea(self.buffer, 0, AutoMerge.CONCAT)
        if hasattr(area, "merge_from"):
            area.data = []  # start the merged trace empty
            self.shared = area
        else:
            self.shared = None  # plain Pin: the local buffer is the trace

    def instrument_trace(self, trace, vm) -> None:
        for ins in trace.instructions:
            ins.insert_call(IPOINT_BEFORE, self.record, IARG_INST_PTR,
                            IARG_END)

    @property
    def trace(self) -> list[int]:
        """The complete merged trace."""
        if self.shared is not None:
            return list(self.shared.data)
        return list(self.buffer)

    def report(self) -> dict:
        trace = self.trace
        return {"entries": len(trace), "dropped": self.dropped,
                "first": trace[:5], "last": trace[-5:]}
