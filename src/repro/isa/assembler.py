"""Two-pass assembler for the toy ISA.

Syntax overview::

    ; comment (also '#')
    .equ    LIMIT, 100          ; define a constant
    .text                       ; switch to the text section
    .entry  main                ; program entry point
    main:
        li      a0, LIMIT
        call    work
        li      a1, rv          ; ERROR: li takes an immediate; use mov
        mov     a1, rv          ; pseudo-instruction
        li      a0, SYS_EXIT
        syscall
    work:
        ld      t0, 0(a0)       ; load word at a0+0
        st      t0, 8(sp)
        beq     t0, zero, done
    done:
        ret
    .data
    msg:    .asciiz "hello"     ; one char per word, NUL-terminated
    table:  .word 1, 2, 3, done ; symbols allowed in .word
    buf:    .space 64           ; 64 zero words

Pseudo-instructions (expanded during pass one, so labels stay exact):

========== ======================== =====================================
Pseudo     Expansion                Notes
========== ======================== =====================================
``mov``    ``addi rd, rs, 0``
``la``     ``li rd, symbol``        identical to ``li``; reads better
``neg``    ``sub rd, zero, rs``
``not``    ``xori rd, rs, -1``
``inc``    ``addi rd, rd, 1``
``dec``    ``addi rd, rd, -1``
``b``      ``j label``
``bgt``    ``blt`` (swapped)        and ``ble``/``bgtu``/``bleu`` likewise
``beqz``   ``beq rs, zero, label``  and ``bnez``
========== ======================== =====================================

Immediates accept decimal, hex (``0x``), negative values, character
literals (``'a'``), previously defined ``.equ`` names, labels, and
``symbol+offset`` / ``symbol-offset`` expressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AssemblerError, EncodingError
from . import abi
from .encoding import encode
from .instructions import Format, INFO, MNEMONICS, Op
from .program import Program, Segment
from .registers import ALIASES

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_SPLIT_RE = re.compile(r"\s*,\s*")
_MEM_OPERAND_RE = re.compile(r"^(.*?)\((\w+)\)$")

#: Pseudo mnemonics and how many operands they take, for early validation.
_PSEUDOS = {
    "mov": 2, "la": 2, "neg": 2, "not": 2, "inc": 1, "dec": 1,
    "b": 1, "bgt": 3, "ble": 3, "bgtu": 3, "bleu": 3, "beqz": 2, "bnez": 2,
}

_SWAPPED_BRANCH = {"bgt": Op.BLT, "ble": Op.BGE, "bgtu": Op.BLTU,
                   "bleu": Op.BGEU}


@dataclass
class _Item:
    """One statement destined for a section: an instruction or data words."""

    line: int
    address: int = 0
    # For instructions:
    op: Op | None = None
    operands: tuple[str, ...] = ()
    # For data: literal word values or unresolved expression strings.
    data: list[object] | None = None

    @property
    def size(self) -> int:
        return len(self.data) if self.data is not None else 1


class Assembler:
    """Two-pass assembler producing a :class:`Program`.

    Pass one expands pseudo-instructions, lays out both sections and
    collects label addresses; pass two resolves expressions and encodes.
    """

    def __init__(self, text_base: int = abi.TEXT_BASE,
                 data_base: int | None = None):
        self.text_base = text_base
        #: If None, .data is placed immediately after .text.
        self.data_base = data_base
        self.symbols: dict[str, int] = {}
        self.equates: dict[str, int] = dict(abi.BUILTIN_EQUATES)
        self._entry_symbol: str | None = None

    # -- public API --------------------------------------------------------

    def assemble(self, source: str, name: str = "<asm>") -> Program:
        """Assemble ``source`` and return a loadable :class:`Program`."""
        text_items, data_items = self._parse(source)
        self._layout(text_items, data_items)
        return self._emit(text_items, data_items, name)

    # -- pass one: parse & expand ------------------------------------------

    def _parse(self, source: str) -> tuple[list[_Item], list[_Item]]:
        sections: dict[str, list[_Item]] = {"text": [], "data": []}
        pending_labels: dict[str, list[str]] = {"text": [], "data": []}
        seen_labels: set[str] = set()
        current = "text"

        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = _strip_comment(raw).strip()
            if not line:
                continue
            # Peel off any leading labels (several may stack on one line).
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                label = match.group(1)
                if label in seen_labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                seen_labels.add(label)
                pending_labels[current].append(label)
                line = line[match.end():].strip()
            if not line:
                continue

            if line.startswith("."):
                current = self._directive(line, lineno, sections,
                                          pending_labels, current)
                continue

            items = self._instruction(line, lineno)
            for item in items:
                self._attach_labels(pending_labels[current],
                                    sections[current], item)
                sections[current].append(item)

        for section in ("text", "data"):
            if pending_labels[section]:
                # Labels at the very end of a section point one past it.
                tail = _Item(line=0, data=[])
                self._attach_labels(pending_labels[section],
                                    sections[section], tail)
                sections[section].append(tail)
        return sections["text"], sections["data"]

    def _attach_labels(self, labels: list[str], section: list[_Item],
                       item: _Item) -> None:
        item.pending_labels = list(labels)  # type: ignore[attr-defined]
        labels.clear()

    def _directive(self, line: str, lineno: int,
                   sections: dict[str, list[_Item]],
                   pending_labels: dict[str, list[str]],
                   current: str) -> str:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""

        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".entry":
            if not rest:
                raise AssemblerError(".entry requires a symbol", lineno)
            self._entry_symbol = rest.strip()
            return current
        if name == ".equ":
            fields = _TOKEN_SPLIT_RE.split(rest)
            if len(fields) != 2:
                raise AssemblerError(".equ requires 'name, value'", lineno)
            self.equates[fields[0].strip()] = self._int_literal(
                fields[1].strip(), lineno)
            return current
        if name == ".word":
            values: list[object] = []
            for token in _TOKEN_SPLIT_RE.split(rest):
                token = token.strip()
                if not token:
                    raise AssemblerError("empty .word operand", lineno)
                values.append(token)
            item = _Item(line=lineno, data=values)
        elif name == ".space":
            count = self._int_literal(rest.strip(), lineno)
            if count < 0:
                raise AssemblerError(".space size must be >= 0", lineno)
            item = _Item(line=lineno, data=[0] * count)
        elif name in (".ascii", ".asciiz"):
            text = _parse_string(rest.strip(), lineno)
            words: list[object] = [ord(ch) for ch in text]
            if name == ".asciiz":
                words.append(0)
            item = _Item(line=lineno, data=words)
        else:
            raise AssemblerError(f"unknown directive {name!r}", lineno)

        self._attach_labels(pending_labels[current], sections[current], item)
        sections[current].append(item)
        return current

    def _instruction(self, line: str, lineno: int) -> list[_Item]:
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(
            tok.strip() for tok in _TOKEN_SPLIT_RE.split(operand_text)
            if tok.strip()) if operand_text else ()

        if mnemonic in _PSEUDOS:
            return self._expand_pseudo(mnemonic, operands, lineno)
        if mnemonic not in MNEMONICS:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", lineno)
        return [_Item(line=lineno, op=MNEMONICS[mnemonic], operands=operands)]

    def _expand_pseudo(self, mnemonic: str, operands: tuple[str, ...],
                       lineno: int) -> list[_Item]:
        expected = _PSEUDOS[mnemonic]
        if len(operands) != expected:
            raise AssemblerError(
                f"{mnemonic} expects {expected} operand(s), "
                f"got {len(operands)}", lineno)
        if mnemonic == "mov":
            ops = (operands[0], operands[1], "0")
            return [_Item(line=lineno, op=Op.ADDI, operands=ops)]
        if mnemonic == "la":
            return [_Item(line=lineno, op=Op.LI, operands=operands)]
        if mnemonic == "neg":
            ops = (operands[0], "zero", operands[1])
            return [_Item(line=lineno, op=Op.SUB, operands=ops)]
        if mnemonic == "not":
            ops = (operands[0], operands[1], "-1")
            return [_Item(line=lineno, op=Op.XORI, operands=ops)]
        if mnemonic == "inc":
            ops = (operands[0], operands[0], "1")
            return [_Item(line=lineno, op=Op.ADDI, operands=ops)]
        if mnemonic == "dec":
            ops = (operands[0], operands[0], "-1")
            return [_Item(line=lineno, op=Op.ADDI, operands=ops)]
        if mnemonic == "b":
            return [_Item(line=lineno, op=Op.J, operands=operands)]
        if mnemonic in _SWAPPED_BRANCH:
            ops = (operands[1], operands[0], operands[2])
            return [_Item(line=lineno, op=_SWAPPED_BRANCH[mnemonic],
                          operands=ops)]
        if mnemonic in ("beqz", "bnez"):
            op = Op.BEQ if mnemonic == "beqz" else Op.BNE
            ops = (operands[0], "zero", operands[1])
            return [_Item(line=lineno, op=op, operands=ops)]
        raise AssemblerError(f"unhandled pseudo {mnemonic!r}", lineno)

    # -- layout -------------------------------------------------------------

    def _layout(self, text_items: list[_Item],
                data_items: list[_Item]) -> None:
        addr = self.text_base
        for item in text_items:
            item.address = addr
            self._define_labels(item)
            addr += item.size
        text_end = addr
        addr = self.data_base if self.data_base is not None else text_end
        for item in data_items:
            item.address = addr
            self._define_labels(item)
            addr += item.size
        self._text_end = text_end
        self._data_end = addr

    def _define_labels(self, item: _Item) -> None:
        for label in getattr(item, "pending_labels", ()):
            self.symbols[label] = item.address

    # -- pass two: resolve & encode -----------------------------------------

    def _emit(self, text_items: list[_Item], data_items: list[_Item],
              name: str) -> Program:
        program = Program(source_name=name)
        program.symbols = dict(self.symbols)
        program.text_base = self.text_base
        program.text_end = self._text_end

        text_words = []
        for item in text_items:
            if item.data is not None:
                text_words.extend(
                    self._resolve(value, item.line) for value in item.data)
            else:
                text_words.append(self._encode_item(item))
        data_words = []
        for item in data_items:
            assert item.data is not None
            data_words.extend(
                self._resolve(value, item.line) for value in item.data)

        if text_words:
            program.add_segment(
                Segment(self.text_base, tuple(text_words), name=".text"))
        if data_words:
            data_base = (self.data_base if self.data_base is not None
                         else self._text_end)
            program.add_segment(
                Segment(data_base, tuple(data_words), name=".data"))

        if self._entry_symbol is not None:
            if self._entry_symbol not in self.symbols:
                raise AssemblerError(
                    f".entry symbol {self._entry_symbol!r} is undefined")
            program.entry = self.symbols[self._entry_symbol]
        elif "main" in self.symbols:
            program.entry = self.symbols["main"]
        else:
            program.entry = self.text_base
        return program

    def _encode_item(self, item: _Item) -> int:
        assert item.op is not None
        info = INFO[item.op]
        ops = item.operands
        line = item.line
        try:
            if info.format is Format.NONE:
                self._expect(ops, 0, item)
                return encode(item.op)
            if info.format is Format.RRR:
                self._expect(ops, 3, item)
                return encode(item.op, rd=self._reg(ops[0], line),
                              rs=self._reg(ops[1], line),
                              rt=self._reg(ops[2], line))
            if info.format is Format.RRI:
                self._expect(ops, 3, item)
                return encode(item.op, rd=self._reg(ops[0], line),
                              rs=self._reg(ops[1], line),
                              imm=self._resolve(ops[2], line))
            if info.format is Format.RI:
                self._expect(ops, 2, item)
                return encode(item.op, rd=self._reg(ops[0], line),
                              imm=self._resolve(ops[1], line))
            if info.format is Format.MEM_L:
                self._expect(ops, 2, item)
                base, offset = self._mem_operand(ops[1], line)
                return encode(item.op, rd=self._reg(ops[0], line),
                              rs=base, imm=offset)
            if info.format is Format.MEM_S:
                self._expect(ops, 2, item)
                base, offset = self._mem_operand(ops[1], line)
                return encode(item.op, rt=self._reg(ops[0], line),
                              rs=base, imm=offset)
            if info.format is Format.R:
                self._expect(ops, 1, item)
                return encode(item.op, rs=self._reg(ops[0], line))
            if info.format is Format.RD:
                self._expect(ops, 1, item)
                return encode(item.op, rd=self._reg(ops[0], line))
            if info.format is Format.BRANCH:
                self._expect(ops, 3, item)
                return encode(item.op, rs=self._reg(ops[0], line),
                              rt=self._reg(ops[1], line),
                              imm=self._resolve(ops[2], line))
            if info.format is Format.I:
                self._expect(ops, 1, item)
                return encode(item.op, imm=self._resolve(ops[0], line))
        except EncodingError as exc:
            raise AssemblerError(str(exc), line) from exc
        raise AssemblerError(f"unhandled format {info.format}", line)

    def _expect(self, ops: tuple[str, ...], count: int, item: _Item) -> None:
        if len(ops) != count:
            assert item.op is not None
            raise AssemblerError(
                f"{item.op.name.lower()} expects {count} operand(s), "
                f"got {len(ops)}", item.line)

    def _reg(self, token: str, line: int) -> int:
        try:
            return ALIASES[token.lower()]
        except KeyError:
            raise AssemblerError(f"unknown register {token!r}", line) \
                from None

    def _mem_operand(self, token: str, line: int) -> tuple[int, int]:
        """Parse ``imm(base)`` into (base register, offset)."""
        match = _MEM_OPERAND_RE.match(token)
        if not match:
            raise AssemblerError(
                f"expected 'offset(base)' memory operand, got {token!r}",
                line)
        offset_text = match.group(1).strip()
        offset = self._resolve(offset_text, line) if offset_text else 0
        return self._reg(match.group(2), line), offset

    def _resolve(self, value: object, line: int) -> int:
        """Resolve an immediate expression to an integer."""
        if isinstance(value, int):
            return value
        token = str(value).strip()
        # symbol+offset / symbol-offset expressions.
        for sep in ("+", "-"):
            idx = token.rfind(sep)
            if idx > 0:
                head, tail = token[:idx].strip(), token[idx + 1:].strip()
                if _looks_symbolic(head) and tail:
                    base = self._resolve(head, line)
                    offset = self._int_literal(tail, line)
                    return base + offset if sep == "+" else base - offset
        if token in self.symbols:
            return self.symbols[token]
        if token in self.equates:
            return self.equates[token]
        return self._int_literal(token, line)

    def _int_literal(self, token: str, line: int) -> int:
        if len(token) >= 3 and token[0] == "'" and token[-1] == "'":
            body = token[1:-1]
            unescaped = _unescape(body, line)
            if len(unescaped) != 1:
                raise AssemblerError(
                    f"character literal {token!r} must be one char", line)
            return ord(unescaped)
        if token in self.equates:
            return self.equates[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblerError(
                f"cannot resolve immediate {token!r}", line) from None


def _strip_comment(line: str) -> str:
    """Remove ';' / '#' comments, respecting string and char literals."""
    in_string = False
    in_char = False
    for i, ch in enumerate(line):
        if ch == '"' and not in_char and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif ch == "'" and not in_string and (i == 0 or line[i - 1] != "\\"):
            in_char = not in_char
        elif ch in ";#" and not in_string and not in_char:
            return line[:i]
    return line


def _parse_string(token: str, line: int) -> str:
    if len(token) < 2 or token[0] != '"' or token[-1] != '"':
        raise AssemblerError(f"expected quoted string, got {token!r}", line)
    return _unescape(token[1:-1], line)


def _unescape(body: str, line: int) -> str:
    out = []
    i = 0
    escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
               '"': '"', "'": "'"}
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise AssemblerError("dangling escape in string", line)
            nxt = body[i + 1]
            if nxt not in escapes:
                raise AssemblerError(f"unknown escape '\\{nxt}'", line)
            out.append(escapes[nxt])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _looks_symbolic(token: str) -> bool:
    return bool(token) and (token[0].isalpha() or token[0] in "_.$")


def assemble(source: str, name: str = "<asm>", **kwargs) -> Program:
    """Convenience wrapper: assemble ``source`` with a fresh assembler."""
    return Assembler(**kwargs).assemble(source, name=name)
