"""C-style Pin API facade.

Thin wrappers matching the names used in the paper's Figure 2, so the
shipped tools read like their Pin counterparts::

    def Trace(trace, v):
        bbl = TRACE_BblHead(trace)
        while BBL_Valid(bbl):
            INS_InsertCall(BBL_InsHead(bbl), IPOINT_BEFORE, docount,
                           IARG_UINT64, BBL_NumIns(bbl), IARG_END)
            bbl = BBL_Next(bbl)

Everything here delegates to the object API in :mod:`repro.pin.trace`;
tools are free to use either style.
"""

from __future__ import annotations

from .filter import InstrumentFilter, opcode_class_of
from .trace import Bbl, Ins, TraceObj

# -- TRACE ------------------------------------------------------------------


def TRACE_Address(trace: TraceObj) -> int:
    return trace.address


def TRACE_NumBbl(trace: TraceObj) -> int:
    return len(trace.bbls)


def TRACE_NumIns(trace: TraceObj) -> int:
    return trace.num_ins


def TRACE_BblHead(trace: TraceObj) -> Bbl | None:
    """First basic block of the trace (None when the trace is empty)."""
    if not trace.bbls:
        return None
    head = trace.bbls[0]
    _link(trace)
    return head


def _link(trace: TraceObj) -> None:
    """Attach next-pointers so BBL_Next / INS_Next iterate in O(1)."""
    for i, bbl in enumerate(trace.bbls):
        bbl._next = trace.bbls[i + 1] if i + 1 < len(trace.bbls) else None
        instructions = bbl.instructions
        for j, ins in enumerate(instructions):
            ins._next = (instructions[j + 1]
                         if j + 1 < len(instructions) else None)


# -- BBL ---------------------------------------------------------------------


def BBL_Valid(bbl: Bbl | None) -> bool:
    return bbl is not None


def BBL_Next(bbl: Bbl) -> Bbl | None:
    return getattr(bbl, "_next", None)


def BBL_Address(bbl: Bbl) -> int:
    return bbl.address


def BBL_NumIns(bbl: Bbl) -> int:
    return bbl.num_ins


def BBL_InsHead(bbl: Bbl) -> Ins:
    return bbl.head


def BBL_InsTail(bbl: Bbl) -> Ins:
    return bbl.tail


# -- INS ---------------------------------------------------------------------


def INS_Valid(ins: Ins | None) -> bool:
    return ins is not None


def INS_Next(ins: Ins) -> Ins | None:
    return getattr(ins, "_next", None)


def INS_Address(ins: Ins) -> int:
    return ins.address


def INS_Disassemble(ins: Ins) -> str:
    return ins.disassemble()


def INS_IsBranch(ins: Ins) -> bool:
    return ins.is_branch

def INS_IsCall(ins: Ins) -> bool:
    return ins.is_call


def INS_IsRet(ins: Ins) -> bool:
    return ins.is_ret


def INS_IsSyscall(ins: Ins) -> bool:
    return ins.is_syscall


def INS_IsMemoryRead(ins: Ins) -> bool:
    return ins.is_memory_read


def INS_IsMemoryWrite(ins: Ins) -> bool:
    return ins.is_memory_write


def INS_OpcodeClass(ins: Ins) -> str:
    """Broad instruction class: ``control``, ``mem`` or ``alu``."""
    return opcode_class_of(ins)


def INS_InsertCall(ins: Ins, ipoint, fn, *iargs) -> None:
    ins.insert_call(ipoint, fn, *iargs)


def INS_InsertSummarizedCall(ins: Ins, ipoint, fn, summary, *iargs) -> None:
    """``INS_InsertCall`` that also declares the call's summary form.

    ``summary(iterations, *args)`` must equal ``iterations`` invocations
    of ``fn(*args)``; the suppression pass may then fire the summary
    once per loop instead of the call once per iteration.
    """
    ins.insert_summarized_call(ipoint, fn, summary, *iargs)


def INS_InsertIfCall(ins: Ins, ipoint, fn, *iargs) -> None:
    ins.insert_if_call(ipoint, fn, *iargs)


def INS_InsertThenCall(ins: Ins, ipoint, fn, *iargs) -> None:
    ins.insert_then_call(ipoint, fn, *iargs)


# -- filters -----------------------------------------------------------------


def INS_MatchesFilter(ins: Ins, flt: InstrumentFilter | None) -> bool:
    """True when ``ins`` matches ``flt`` (a None filter matches all)."""
    return flt is None or flt.matches_ins(ins)


def TRACE_MatchesFilter(trace: TraceObj,
                        flt: InstrumentFilter | None) -> bool:
    """True when any instruction of ``trace`` matches ``flt``."""
    return flt is None or flt.matches_trace(trace)


def BBL_NumMatchingIns(bbl: Bbl, flt: InstrumentFilter | None) -> int:
    """Number of instructions in ``bbl`` matching ``flt``.

    Filter-aware tools count per *instruction*, not per trace: trace
    shapes differ between serial Pin and sliced execution (forced
    boundaries split traces at signature pcs), so only an
    instruction-granular count is identical across both — the property
    the audit's ``tool.results`` check enforces.
    """
    if flt is None:
        return bbl.num_ins
    return sum(1 for ins in bbl.instructions if flt.matches_ins(ins))
