"""SuperPin configuration switches.

Mirrors the paper's command-line interface (§5):

======================= ==================================================
Switch                  Meaning
======================= ==================================================
``-sp 1``               enable SuperPin
``-spmsec <value>``     timeslice length in (virtual) milliseconds
``-spmp <value>``       maximum number of *running* slices
``-spsysrecs <value>``  max syscall records per slice; 0 disables
                        recording (every replayable call then forces a
                        new slice)
``-spworkers <value>``  host worker processes for the slice phase; 0
                        (default) runs slices sequentially in-process
``-spfaults <policy>``  slice fault policy: ``failfast`` (default),
                        ``retry`` or ``degrade``
``-spretries <value>``  worker re-executions per failed slice before the
                        in-process fallback (policies retry/degrade)
``-spdeadline <secs>``  wall-clock deadline floor per slice; the full
                        deadline adds a per-instruction allowance
``-spinject <spec>``    deterministic fault injection, e.g.
                        ``crash@0,hang@2:*`` (see superpin.faults)
``-sptrace <path>``     export the run's structured trace (repro.obs):
                        ``*.jsonl`` writes an event log, anything else
                        writes Chrome-trace JSON (load in Perfetto)
``-spmetrics <0|1>``    collect named counters/gauges/histograms for
                        the run (off by default: the null registry)
``-splinktraces <0|1>`` direct trace linking in slice engines: chain
                        trace->trace through patched exit links,
                        bypassing the dispatcher (on by default)
``-spwarmcache <0|1>``  cross-slice warm code cache: the pilot slice's
                        compiled traces ship with every later slice's
                        payload so slices start hot (on by default;
                        effective with ``-spworkers`` or sequential)
``-sptc2 <N>``          tiered compilation: promote trace chains into
                        hot superblocks in a second translation cache
                        once a trace executes N times (see
                        repro.pin.superblock).  0 disables tier 2; the
                        default trip count is 16.  Requires
                        ``-splinktraces`` (chains follow direct links)
``-spaudit <0|1>``      differential replay audit: re-run the program
                        uninstrumented (and once under serial Pin) and
                        compare every slice's architectural end state,
                        syscall stream and tool results against the
                        reference (see superpin.audit; off by default)
``-spfilter <spec>``    selective instrumentation: restrict the tool to
                        traces matching the spec (comma-separated
                        ``routine:NAME`` / ``range:LO-HI`` /
                        ``opcode:CLASS`` terms, see repro.pin.filter);
                        other traces compile uninstrumented
``-spsuppress <0|1>``   redundancy suppression: summarize invariant
                        loop instrumentation into one call per loop
                        exit (see repro.pin.suppress; off by default)
``-spsample <N>``       sampling: instrument every Nth slice only; the
                        other slices run the tool-free fast path (the
                        engine still counts instructions and signature
                        detection still runs).  0 (default) disables
                        sampling.  Tool results then cover only the
                        sampled slices — an approximation the report
                        surfaces explicitly
``-sprecord <path>``    record once: save a durable, content-addressed
                        recording artifact (initial memory image, slice
                        boundary table + signatures, per-slice syscall
                        streams, nondeterminism seed) after the control
                        and signature phases (see superpin.recording)
``-spreplay <path>``    replay many: run the tool against a recording
                        artifact instead of a live master — the master
                        is re-run exactly zero times.  Every load
                        verifies the manifest and per-section digests
``-spjournal <path>``   write-ahead run journal: append each completed
                        slice's result durably so a crashed run can be
                        resumed (see superpin.journal)
``-spresume <0|1>``     resume from ``-spjournal``: adopt the journaled
                        slices and re-execute only the missing ones,
                        with byte-identical merged results
``-sptracestore <dir>`` persistent cross-run trace store: compiled
                        warm-cache payloads are content-addressed by
                        (program digest, ISA fingerprint, JIT backend,
                        filter/suppress config) and shared across runs
                        and processes, so a repeated program starts hot
                        with zero pilot cold compiles (see
                        superpin.trace_store; requires -spwarmcache)
``-sptracestorelimit``  size budget in bytes for the trace store;
                        least-recently-used entries are evicted past it
======================= ==================================================

The reproduction adds knobs the paper fixes implicitly: the virtual clock
rate that converts milliseconds to simulated cycles, and the signature
parameters of §4.4 (stack words recorded, quick-register lookahead).

CI hook: the environment variables ``SUPERPIN_SPWORKERS`` and
``SUPERPIN_SPFAULTS`` override the *defaults* of ``spworkers`` and
``spfaults`` (explicit constructor arguments and parsed switches always
win).  The fault-injection CI job uses them to push the whole test suite
through the supervised parallel slice phase without editing every test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..errors import ConfigError

#: Virtual cycles per virtual second.  The paper ran a 2.2 GHz Xeon; we
#: compress time so whole-suite experiments are tractable in pure Python.
#: Only ratios of times are reported, which clock scaling preserves.
DEFAULT_CLOCK_HZ = 10_000

#: Valid ``-spfaults`` policies (see :mod:`repro.superpin.supervisor`).
FAULT_POLICIES = ("failfast", "retry", "degrade")


def _default_spworkers() -> int:
    return int(os.environ.get("SUPERPIN_SPWORKERS", "0") or 0)


def _default_spfaults() -> str:
    return os.environ.get("SUPERPIN_SPFAULTS", "failfast") or "failfast"


@dataclass
class SuperPinConfig:
    """All SuperPin tunables; defaults match the paper's."""

    sp: bool = True
    #: Timeslice interval in virtual milliseconds (paper default 1000).
    spmsec: int = 1000
    #: Maximum simultaneously *running* slices (paper default 8).
    spmp: int = 8
    #: Max syscall records per slice; 0 disables recording (paper: 1000).
    spsysrecs: int = 1000
    #: Host worker processes for the slice phase.  0 (the default) runs
    #: slices sequentially in-process; N > 0 fans them out over N
    #: processes with functionally identical results.  Distinct from
    #: ``spmp``, which bounds the *modeled* concurrency in the timing
    #: simulation.
    spworkers: int = field(default_factory=_default_spworkers)
    # --- slice supervision (fault isolation for the slice phase) ----------
    #: Fault policy for the slice phase: ``failfast`` aborts the run on
    #: the first slice failure (cancelling everything still queued);
    #: ``retry`` re-executes a failed slice up to ``spretries`` times in
    #: fresh workers, then once in-process, then raises; ``degrade``
    #: retries the same way but on final failure records the slice as a
    #: hole and completes the run with the surviving slices.
    spfaults: str = field(default_factory=_default_spfaults)
    #: Worker re-executions per failed slice before the in-process
    #: fallback (policies ``retry``/``degrade``).
    spretries: int = 2
    #: Wall-clock deadline floor per slice, in host seconds.
    slice_deadline_floor: float = 5.0
    #: Per-master-instruction allowance added to the deadline floor.
    slice_deadline_per_ins: float = 5e-4
    #: Base host-seconds backoff between retries (doubles per attempt).
    slice_retry_backoff: float = 0.05
    #: Deterministic fault-injection plan (:class:`~repro.superpin.
    #: faults.FaultPlan`), or None.  A plan makes chosen slices crash,
    #: hang, corrupt their result, or go runaway on their first M
    #: attempts — the hook that makes the retry/degrade paths testable.
    fault_plan: object = None
    clock_hz: int = DEFAULT_CLOCK_HZ
    #: Stack words captured in a signature (paper: "top 100 words").
    signature_stack_words: int = 100
    #: Basic blocks the recorder may observe when choosing the two
    #: quick-check registers (paper: "a specified block count").
    quickreg_block_count: int = 20
    #: Disable the adaptive quick-register selection (ablation switch).
    quickreg_adaptive: bool = True
    #: Runaway guard: a slice may execute at most this multiple of the
    #: master's instruction count for its interval before being declared
    #: runaway.
    slice_runaway_factor: float = 4.0
    slice_runaway_slack: int = 10_000
    # --- §8 future-work extensions (off by default) -----------------------
    #: Adaptive timeslice throttling: shrink timeslices toward the end of
    #: execution to cut the pipeline delay.  Requires an expected
    #: duration (profile-guided, e.g. from a prior run).
    spadaptive: bool = False
    expected_duration_msec: int = 0
    min_timeslice_msec: int = 50
    #: Share the code cache across timeslices: each trace is compiled by
    #: the first slice to need it; later slices pay only a small
    #: consistency check (paper §8's proposed compilation-overhead fix).
    spsharedcache: bool = False
    #: JIT backend used by slices: "closure" (threaded code) or
    #: "source" (generated Python, see repro.pin.pyjit).
    jit_backend: str = "closure"
    # --- observability (repro.obs) ----------------------------------------
    #: Trace export path, or None.  ``*.jsonl`` writes the JSONL event
    #: log; any other path writes Chrome-trace JSON for Perfetto.
    sptrace: str | None = None
    #: Collect metrics (counters/gauges/histograms).  Off by default:
    #: components then hold the allocation-free null registry.
    spmetrics: bool = False
    # --- dispatch/compile overhead killers (on by default) -----------------
    #: Direct trace linking in slice engines (Pin's exit-stub patching):
    #: compiled traces chain straight to their successors, touching the
    #: dispatcher only on cold exits.  Architecturally invisible.
    splinktraces: bool = True
    #: Cross-slice warm code cache: slice 0 runs first (the pilot), its
    #: compiled traces are folded into a warm payload, and every later
    #: slice installs them before running instead of re-JITting the
    #: working set from guest memory.  The payload is frozen after the
    #: pilot so results stay identical for any worker count.
    spwarmcache: bool = True
    #: Tier-2 promotion threshold (``-sptc2 N``): a tier-1 trace that
    #: executes N times has its hottest link chain straightened into a
    #: superblock served from the second translation cache
    #: (repro.pin.superblock).  Architecturally invisible — the same
    #: compiled segment code runs, and any side exit falls back to
    #: tier 1.  0 disables tier 2; effective only with
    #: ``splinktraces`` (promotion chains follow direct links).
    sptc2: int = 16
    # --- differential replay audit (off by default) ------------------------
    #: Run the lockstep divergence oracle: a reference (uninstrumented)
    #: run records per-boundary architectural checkpoints and syscall
    #: stream digests, a serial-Pin run provides the tool baseline, and
    #: every slice's end state / replayed stream / merged results are
    #: compared.  The :class:`~repro.superpin.audit.AuditReport` lands
    #: on ``SuperPinReport.audit``.  Roughly doubles run time.
    spaudit: bool = False
    # --- selective instrumentation / suppression / sampling ----------------
    #: Instrumentation filter spec (see :func:`repro.pin.filter.
    #: parse_filter`), or None for full instrumentation.  Applied to the
    #: tool *before* it is copied into slices and before the audit
    #: captures its baseline, so every execution mode sees the same
    #: instrumentation and tool results stay bit-identical.
    spfilter: str | None = None
    #: Redundancy suppression: compile legal back-edge loops with their
    #: invariant instrumentation summarized to one call per loop exit
    #: (see repro.pin.suppress).  Results are bit-identical by the
    #: summary contract; the audit enforces it.
    spsuppress: bool = False
    #: Sampling period: instrument slice indices ``i % spsample == 0``
    #: only; other slices skip tool activation entirely.  0 disables.
    #: Unlike -spfilter/-spsuppress this *changes tool results* (they
    #: cover the sampled slices only), so the audit skips the
    #: tool-results comparison when sampling is on.
    spsample: int = 0
    # --- durable recordings and crash-safe runs (superpin.recording) -------
    #: Save a recording artifact to this path after the control and
    #: signature phases ("record once").  Mutually exclusive with
    #: ``spreplay``.
    sprecord: str | None = None
    #: Replay against a recording artifact at this path ("replay many"):
    #: the slice phase sources its boundaries, signatures and syscall
    #: streams from the verified artifact and the master never runs.
    spreplay: str | None = None
    #: Write-ahead run journal path: every completed slice's result is
    #: appended durably, making the run crash-safe.
    spjournal: str | None = None
    #: Resume from the journal at ``spjournal``: adopt its valid entry
    #: prefix and re-execute only the missing slices.
    spresume: bool = False
    # --- persistent cross-run trace store (superpin.trace_store) -----------
    #: Directory of the persistent trace store, or None (off).  With the
    #: store configured (and ``spwarmcache`` on), the run looks its warm
    #: payload up by content address before the slice phase: a hit warms
    #: *every* slice — the pilot included — so a repeated program pays
    #: zero cold compiles; a miss runs the normal pilot protocol and
    #: persists the frozen payload for the next run.
    sptracestore: str | None = None
    #: Size budget (bytes) for the trace store directory; past it the
    #: least-recently-used entries are evicted.
    sptracestore_limit: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.spmsec <= 0:
            raise ConfigError(f"-spmsec must be positive, got {self.spmsec}")
        if self.spmp < 1:
            raise ConfigError(f"-spmp must be >= 1, got {self.spmp}")
        if self.spsysrecs < 0:
            raise ConfigError(
                f"-spsysrecs must be >= 0, got {self.spsysrecs}")
        if self.spworkers < 0:
            raise ConfigError(
                f"-spworkers must be >= 0, got {self.spworkers}")
        if self.spfaults not in FAULT_POLICIES:
            raise ConfigError(
                f"-spfaults must be one of {', '.join(FAULT_POLICIES)}, "
                f"got {self.spfaults!r}")
        if self.spretries < 0:
            raise ConfigError(
                f"-spretries must be >= 0, got {self.spretries}")
        if self.slice_deadline_floor <= 0:
            raise ConfigError(
                f"slice_deadline_floor must be positive, "
                f"got {self.slice_deadline_floor}")
        if self.slice_deadline_per_ins < 0:
            raise ConfigError(
                f"slice_deadline_per_ins must be >= 0, "
                f"got {self.slice_deadline_per_ins}")
        if self.slice_retry_backoff < 0:
            raise ConfigError(
                f"slice_retry_backoff must be >= 0, "
                f"got {self.slice_retry_backoff}")
        if self.slice_runaway_factor <= 0:
            raise ConfigError(
                f"slice_runaway_factor must be positive, "
                f"got {self.slice_runaway_factor}")
        if self.slice_runaway_slack < 0:
            raise ConfigError(
                f"slice_runaway_slack must be >= 0, "
                f"got {self.slice_runaway_slack}")
        if self.clock_hz <= 0:
            raise ConfigError(
                f"clock_hz must be positive, got {self.clock_hz}")
        if self.signature_stack_words < 0:
            raise ConfigError("signature_stack_words must be >= 0")
        if self.jit_backend not in ("closure", "source"):
            raise ConfigError(
                f"jit_backend must be 'closure' or 'source', "
                f"got {self.jit_backend!r}")
        if self.spsample < 0:
            raise ConfigError(
                f"-spsample must be >= 0, got {self.spsample}")
        if self.sptc2 < 0:
            raise ConfigError(
                f"-sptc2 must be >= 0, got {self.sptc2}")
        if self.spfilter is not None and not str(self.spfilter).strip():
            raise ConfigError("-spfilter spec must not be empty")
        for name, flag in (("sprecord", "-sprecord"),
                           ("spreplay", "-spreplay"),
                           ("spjournal", "-spjournal")):
            value = getattr(self, name)
            if value is not None and not str(value).strip():
                raise ConfigError(f"{flag} path must not be empty")
        if self.sprecord is not None and self.spreplay is not None:
            raise ConfigError(
                "-sprecord and -spreplay are mutually exclusive (a replay "
                "would only re-serialize the artifact it was given)")
        if self.spresume and self.spjournal is None:
            raise ConfigError("-spresume requires -spjournal (there is no "
                              "journal to resume from)")
        if (self.sptracestore is not None
                and not str(self.sptracestore).strip()):
            raise ConfigError("-sptracestore path must not be empty")
        if self.sptracestore_limit <= 0:
            raise ConfigError(
                f"-sptracestorelimit must be positive, "
                f"got {self.sptracestore_limit}")

    @property
    def timeslice_cycles(self) -> int:
        """Timeslice interval in virtual cycles."""
        return max(1, self.spmsec * self.clock_hz // 1000)

    @property
    def timeslice_instructions(self) -> int:
        """Master instruction budget per timeslice (native CPI is 1)."""
        return self.timeslice_cycles

    def seconds(self, cycles: float) -> float:
        """Convert virtual cycles to virtual seconds."""
        return cycles / self.clock_hz


def _parse_inject(value: str):
    from .faults import FaultPlan
    return FaultPlan.parse(value)


_FLAG_PARSERS = {
    "-sp": ("sp", lambda v: bool(int(v))),
    "-spmsec": ("spmsec", int),
    "-spmp": ("spmp", int),
    "-spsysrecs": ("spsysrecs", int),
    "-spworkers": ("spworkers", int),
    "-spfaults": ("spfaults", str),
    "-spretries": ("spretries", int),
    "-spdeadline": ("slice_deadline_floor", float),
    "-spinject": ("fault_plan", _parse_inject),
    "-spclock": ("clock_hz", int),
    "-spadaptive": ("spadaptive", lambda v: bool(int(v))),
    "-spexpected": ("expected_duration_msec", int),
    "-spsharedcache": ("spsharedcache", lambda v: bool(int(v))),
    "-spjit": ("jit_backend", str),
    "-sptrace": ("sptrace", str),
    "-spmetrics": ("spmetrics", lambda v: bool(int(v))),
    "-splinktraces": ("splinktraces", lambda v: bool(int(v))),
    "-spwarmcache": ("spwarmcache", lambda v: bool(int(v))),
    "-sptc2": ("sptc2", int),
    "-spaudit": ("spaudit", lambda v: bool(int(v))),
    "-spfilter": ("spfilter", str),
    "-spsuppress": ("spsuppress", lambda v: bool(int(v))),
    "-spsample": ("spsample", int),
    "-sprecord": ("sprecord", str),
    "-spreplay": ("spreplay", str),
    "-spjournal": ("spjournal", str),
    "-spresume": ("spresume", lambda v: bool(int(v))),
    "-sptracestore": ("sptracestore", str),
    "-sptracestorelimit": ("sptracestore_limit", int),
}


def parse_switches(argv: list[str], **overrides) -> SuperPinConfig:
    """Parse paper-style switches (``['-sp', '1', '-spmsec', '500']``).

    Unknown switches raise :class:`ConfigError`; keyword ``overrides``
    win over parsed values (used by the test harness).
    """
    values: dict[str, object] = {}
    i = 0
    while i < len(argv):
        flag = argv[i]
        if flag not in _FLAG_PARSERS:
            raise ConfigError(f"unknown SuperPin switch {flag!r}")
        if i + 1 >= len(argv):
            raise ConfigError(f"switch {flag!r} requires a value")
        name, parser = _FLAG_PARSERS[flag]
        try:
            values[name] = parser(argv[i + 1])
        except ValueError as exc:
            raise ConfigError(
                f"bad value {argv[i + 1]!r} for {flag!r}") from exc
        i += 2
    values.update(overrides)
    return SuperPinConfig(**values)  # type: ignore[arg-type]
