"""Direct interpreter: the machine's native execution reference.

This is what "running the application natively" means in the reproduction.
The SuperPin master process also executes through this interpreter
(uninstrumented), with the control process regaining control after every
system call — the moral equivalent of the paper's ptrace supervision.

The hot loop is deliberately monolithic: one function, local aliases,
inlined memory access and a decode cache keyed by the raw instruction word
(identical words decode identically, so the cache needs no invalidation
even under code writes).  This is the standard shape for interpreters in
CPython, where attribute lookups and function calls dominate cost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ArithmeticFault, GuestFault, IllegalInstruction
from ..isa.encoding import decode, Decoded
from ..isa.instructions import MASK64, Op
from .kernel import SyscallOutcome
from .memory import PAGE_WORDS
from .process import Process

_SIGN = 1 << 63
_PAGE_SHIFT = 10
_OFF_MASK = PAGE_WORDS - 1
assert PAGE_WORDS == 1 << _PAGE_SHIFT


class StopReason(enum.Enum):
    """Why :meth:`Interpreter.run` returned."""

    EXIT = "exit"          # guest exited (exit syscall or halt)
    SYSCALL = "syscall"    # a syscall completed and stop_after_syscall is set
    BUDGET = "budget"      # instruction budget exhausted


@dataclass
class StepResult:
    """Outcome of one :meth:`Interpreter.run` call."""

    reason: StopReason
    #: Instructions executed during this call.
    instructions: int
    #: The syscall outcome when reason is SYSCALL (and for the final
    #: exit-syscall when reason is EXIT).
    outcome: SyscallOutcome | None = None


class Interpreter:
    """Uninstrumented executor for one :class:`Process`."""

    def __init__(self, process: Process, stop_after_syscall: bool = False):
        self.process = process
        self.stop_after_syscall = stop_after_syscall
        self.total_instructions = 0
        self.total_syscalls = 0
        self._decode_cache: dict[int, Decoded] = {}

    def run(self, max_instructions: int | None = None) -> StepResult:
        """Execute until exit, budget exhaustion, or (optionally) a syscall.

        Returns a :class:`StepResult`; the process's ``exited`` /
        ``exit_code`` fields are updated on exit.
        """
        proc = self.process
        if proc.exited:
            return StepResult(StopReason.EXIT, 0)

        cpu = proc.cpu
        mem = proc.mem
        regs = cpu.regs
        pages = mem._pages
        frozen = mem._frozen
        strict = mem.strict
        dcache = self._decode_cache
        handler = proc.syscall_handler
        stop_after_syscall = self.stop_after_syscall

        budget = max_instructions if max_instructions is not None else -1
        pc = cpu.pc
        count = 0
        result: StepResult | None = None

        # Opcode constants as locals (global lookups are slow in the loop).
        op_nop, op_halt, op_syscall = int(Op.NOP), int(Op.HALT), \
            int(Op.SYSCALL)
        op_add, op_sub, op_mul, op_div, op_mod = (int(Op.ADD), int(Op.SUB),
                                                  int(Op.MUL), int(Op.DIV),
                                                  int(Op.MOD))
        op_and, op_or, op_xor = int(Op.AND), int(Op.OR), int(Op.XOR)
        op_shl, op_shr, op_sar = int(Op.SHL), int(Op.SHR), int(Op.SAR)
        op_slt, op_sltu = int(Op.SLT), int(Op.SLTU)
        op_addi, op_muli, op_andi = int(Op.ADDI), int(Op.MULI), int(Op.ANDI)
        op_ori, op_xori = int(Op.ORI), int(Op.XORI)
        op_shli, op_shri, op_sari = int(Op.SHLI), int(Op.SHRI), int(Op.SARI)
        op_slti = int(Op.SLTI)
        op_li, op_ld, op_st = int(Op.LI), int(Op.LD), int(Op.ST)
        op_push, op_pop = int(Op.PUSH), int(Op.POP)
        op_j, op_jr = int(Op.J), int(Op.JR)
        op_beq, op_bne = int(Op.BEQ), int(Op.BNE)
        op_blt, op_bge = int(Op.BLT), int(Op.BGE)
        op_bltu, op_bgeu = int(Op.BLTU), int(Op.BGEU)
        op_call, op_callr, op_ret = int(Op.CALL), int(Op.CALLR), int(Op.RET)

        try:
            while True:
                if count == budget:
                    result = StepResult(StopReason.BUDGET, count)
                    break

                # --- fetch + decode ---
                if strict:
                    mem._check(pc)
                page = pages.get(pc >> _PAGE_SHIFT)
                word = page[pc & _OFF_MASK] if page is not None else 0
                dec = dcache.get(word)
                if dec is None:
                    dec = decode(word, pc=pc)
                    dcache[word] = dec
                op, rd, rs, rt, imm = dec
                count += 1
                npc = pc + 1

                # --- execute (ordered roughly by dynamic frequency) ---
                if op == op_addi:
                    if rd:
                        regs[rd] = (regs[rs] + imm) & MASK64
                elif op == op_add:
                    if rd:
                        regs[rd] = (regs[rs] + regs[rt]) & MASK64
                elif op == op_ld:
                    addr = (regs[rs] + imm) & MASK64
                    if strict:
                        mem._check(addr)
                    page = pages.get(addr >> _PAGE_SHIFT)
                    if rd:
                        regs[rd] = (page[addr & _OFF_MASK]
                                    if page is not None else 0)
                elif op == op_st:
                    addr = (regs[rs] + imm) & MASK64
                    if strict:
                        mem._check(addr)
                    idx = addr >> _PAGE_SHIFT
                    page = pages.get(idx)
                    if page is None:
                        page = [0] * PAGE_WORDS
                        pages[idx] = page
                    elif idx in frozen:
                        page = page[:]
                        pages[idx] = page
                        frozen.discard(idx)
                        mem.cow_faults += 1
                        mem.pages_copied += 1
                    page[addr & _OFF_MASK] = regs[rt]
                elif op == op_bne:
                    if regs[rs] != regs[rt]:
                        npc = imm
                elif op == op_beq:
                    if regs[rs] == regs[rt]:
                        npc = imm
                elif op == op_blt:
                    a, b = regs[rs], regs[rt]
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    if a < b:
                        npc = imm
                elif op == op_bge:
                    a, b = regs[rs], regs[rt]
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    if a >= b:
                        npc = imm
                elif op == op_sub:
                    if rd:
                        regs[rd] = (regs[rs] - regs[rt]) & MASK64
                elif op == op_li:
                    if rd:
                        regs[rd] = imm & MASK64
                elif op == op_mul:
                    if rd:
                        regs[rd] = (regs[rs] * regs[rt]) & MASK64
                elif op == op_j:
                    npc = imm
                elif op == op_call:
                    regs[31] = npc
                    npc = imm
                elif op == op_ret:
                    npc = regs[31]
                elif op == op_push:
                    addr = (regs[29] - 1) & MASK64
                    regs[29] = addr
                    if strict:
                        mem._check(addr)
                    idx = addr >> _PAGE_SHIFT
                    page = pages.get(idx)
                    if page is None:
                        page = [0] * PAGE_WORDS
                        pages[idx] = page
                    elif idx in frozen:
                        page = page[:]
                        pages[idx] = page
                        frozen.discard(idx)
                        mem.cow_faults += 1
                        mem.pages_copied += 1
                    page[addr & _OFF_MASK] = regs[rs]
                elif op == op_pop:
                    addr = regs[29]
                    if strict:
                        mem._check(addr)
                    page = pages.get(addr >> _PAGE_SHIFT)
                    if rd:
                        regs[rd] = (page[addr & _OFF_MASK]
                                    if page is not None else 0)
                    regs[29] = (addr + 1) & MASK64
                elif op == op_syscall:
                    cpu.pc = npc
                    outcome = handler.do_syscall(cpu, mem)
                    self.total_syscalls += 1
                    pc = cpu.pc
                    if outcome.exited:
                        proc.exited = True
                        proc.exit_code = outcome.exit_code
                        result = StepResult(StopReason.EXIT, count, outcome)
                        break
                    if stop_after_syscall:
                        result = StepResult(StopReason.SYSCALL, count,
                                            outcome)
                        break
                    continue
                elif op == op_halt:
                    cpu.pc = pc
                    proc.exited = True
                    proc.exit_code = regs[1]
                    result = StepResult(StopReason.EXIT, count)
                    break
                elif op == op_and:
                    if rd:
                        regs[rd] = regs[rs] & regs[rt]
                elif op == op_or:
                    if rd:
                        regs[rd] = regs[rs] | regs[rt]
                elif op == op_xor:
                    if rd:
                        regs[rd] = regs[rs] ^ regs[rt]
                elif op == op_shl:
                    if rd:
                        regs[rd] = (regs[rs] << (regs[rt] & 63)) & MASK64
                elif op == op_shr:
                    if rd:
                        regs[rd] = regs[rs] >> (regs[rt] & 63)
                elif op == op_sar:
                    if rd:
                        a = regs[rs]
                        if a & _SIGN:
                            a -= 1 << 64
                        regs[rd] = (a >> (regs[rt] & 63)) & MASK64
                elif op == op_slt:
                    if rd:
                        a, b = regs[rs], regs[rt]
                        if a & _SIGN:
                            a -= 1 << 64
                        if b & _SIGN:
                            b -= 1 << 64
                        regs[rd] = 1 if a < b else 0
                elif op == op_sltu:
                    if rd:
                        regs[rd] = 1 if regs[rs] < regs[rt] else 0
                elif op == op_div or op == op_mod:
                    a, b = regs[rs], regs[rt]
                    if b == 0:
                        cpu.pc = pc
                        raise ArithmeticFault("division by zero", pc=pc)
                    if a & _SIGN:
                        a -= 1 << 64
                    if b & _SIGN:
                        b -= 1 << 64
                    q = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        q = -q
                    if rd:
                        if op == op_div:
                            regs[rd] = q & MASK64
                        else:
                            regs[rd] = (a - q * b) & MASK64
                elif op == op_muli:
                    if rd:
                        regs[rd] = (regs[rs] * imm) & MASK64
                elif op == op_andi:
                    if rd:
                        regs[rd] = regs[rs] & (imm & MASK64)
                elif op == op_ori:
                    if rd:
                        regs[rd] = regs[rs] | (imm & MASK64)
                elif op == op_xori:
                    if rd:
                        regs[rd] = regs[rs] ^ (imm & MASK64)
                elif op == op_shli:
                    if rd:
                        regs[rd] = (regs[rs] << (imm & 63)) & MASK64
                elif op == op_shri:
                    if rd:
                        regs[rd] = regs[rs] >> (imm & 63)
                elif op == op_sari:
                    if rd:
                        a = regs[rs]
                        if a & _SIGN:
                            a -= 1 << 64
                        regs[rd] = (a >> (imm & 63)) & MASK64
                elif op == op_slti:
                    if rd:
                        a = regs[rs]
                        if a & _SIGN:
                            a -= 1 << 64
                        regs[rd] = 1 if a < imm else 0
                elif op == op_bltu:
                    if regs[rs] < regs[rt]:
                        npc = imm
                elif op == op_bgeu:
                    if regs[rs] >= regs[rt]:
                        npc = imm
                elif op == op_jr:
                    npc = regs[rs]
                elif op == op_callr:
                    regs[31] = npc
                    npc = regs[rs]
                elif op == op_nop:
                    pass
                else:  # pragma: no cover - decode() rejects unknown opcodes
                    raise IllegalInstruction(f"opcode {op}", pc=pc)

                pc = npc
        except GuestFault:
            cpu.pc = pc
            self.total_instructions += count
            raise

        cpu.pc = pc
        self.total_instructions += count
        assert result is not None
        return result


def run_to_completion(process: Process,
                      max_instructions: int = 200_000_000) -> StepResult:
    """Run ``process`` natively until exit; guard against runaway guests."""
    interp = Interpreter(process)
    result = interp.run(max_instructions=max_instructions)
    if result.reason is not StopReason.EXIT:
        raise GuestFault(
            f"program did not exit within {max_instructions} instructions")
    result.instructions = interp.total_instructions
    return result
