"""Instruction set definition.

Every instruction occupies exactly one 64-bit memory word.  The operand
*format* of each opcode determines both its assembly syntax and which
encoded fields are meaningful:

========= =========================== ===========================
Format    Assembly syntax             Fields used
========= =========================== ===========================
``RRR``   ``op rd, rs, rt``           rd, rs, rt
``RRI``   ``op rd, rs, imm``          rd, rs, imm
``RI``    ``op rd, imm``              rd, imm
``MEM_L`` ``op rd, imm(rs)``          rd, rs, imm
``MEM_S`` ``op rt, imm(rs)``          rt, rs, imm
``R``     ``op rs``                   rs
``RD``    ``op rd``                   rd
``BRANCH`` ``op rs, rt, imm``         rs, rt, imm
``I``     ``op imm``                  imm
``NONE``  ``op``                      (none)
========= =========================== ===========================

Branch and jump targets are *absolute word addresses* resolved by the
assembler; there is no PC-relative addressing, which keeps the decoder and
the JIT trivially relocatable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .registers import RA, RV, SP


class Format(enum.Enum):
    """Operand format of an opcode (see module docstring)."""

    RRR = "rrr"
    RRI = "rri"
    RI = "ri"
    MEM_L = "mem_l"
    MEM_S = "mem_s"
    R = "r"
    RD = "rd"
    BRANCH = "branch"
    I = "i"  # noqa: E741 - matches the ISA manual's name
    NONE = "none"


class Op(enum.IntEnum):
    """Opcode numbers.  The numeric values are part of the binary format."""

    NOP = 0
    HALT = 1
    SYSCALL = 2

    # Three-register ALU.
    ADD = 10
    SUB = 11
    MUL = 12
    DIV = 13
    MOD = 14
    AND = 15
    OR = 16
    XOR = 17
    SHL = 18
    SHR = 19
    SAR = 20
    SLT = 21
    SLTU = 22

    # Register-immediate ALU.
    ADDI = 30
    MULI = 31
    ANDI = 32
    ORI = 33
    XORI = 34
    SHLI = 35
    SHRI = 36
    SARI = 37
    SLTI = 38

    # Constants and data movement.
    LI = 45
    LD = 46
    ST = 47
    PUSH = 48
    POP = 49

    # Control transfer (absolute targets).
    J = 60
    JR = 61
    BEQ = 62
    BNE = 63
    BLT = 64
    BGE = 65
    BLTU = 66
    BGEU = 67
    CALL = 68
    CALLR = 69
    RET = 70


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    op: "Op"
    format: Format
    #: Ends a basic block (any control transfer, syscall, or halt).
    is_control: bool = False
    #: Conditional branch (may fall through).
    is_cond_branch: bool = False
    #: Unconditional jump/call/return.
    is_uncond: bool = False
    is_call: bool = False
    is_ret: bool = False
    is_syscall: bool = False
    is_halt: bool = False
    #: Reads a data-memory word.
    is_mem_read: bool = False
    #: Writes a data-memory word.
    is_mem_write: bool = False


def _info(op: Op, fmt: Format, **flags: bool) -> OpInfo:
    return OpInfo(op, fmt, **flags)


_ALU_RRR = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
            Op.SHL, Op.SHR, Op.SAR, Op.SLT, Op.SLTU)
_ALU_RRI = (Op.ADDI, Op.MULI, Op.ANDI, Op.ORI, Op.XORI, Op.SHLI, Op.SHRI,
            Op.SARI, Op.SLTI)
_COND_BRANCHES = (Op.BEQ, Op.BNE, Op.BLT, Op.BGE, Op.BLTU, Op.BGEU)

#: Opcode -> :class:`OpInfo`, the single source of truth for instruction
#: classification used by the assembler, disassembler, interpreter and JIT.
INFO: dict[Op, OpInfo] = {}

for _op in _ALU_RRR:
    INFO[_op] = _info(_op, Format.RRR)
for _op in _ALU_RRI:
    INFO[_op] = _info(_op, Format.RRI)
for _op in _COND_BRANCHES:
    INFO[_op] = _info(_op, Format.BRANCH, is_control=True, is_cond_branch=True)

INFO[Op.NOP] = _info(Op.NOP, Format.NONE)
INFO[Op.HALT] = _info(Op.HALT, Format.NONE, is_control=True, is_halt=True)
INFO[Op.SYSCALL] = _info(Op.SYSCALL, Format.NONE, is_control=True,
                         is_syscall=True)
INFO[Op.LI] = _info(Op.LI, Format.RI)
INFO[Op.LD] = _info(Op.LD, Format.MEM_L, is_mem_read=True)
INFO[Op.ST] = _info(Op.ST, Format.MEM_S, is_mem_write=True)
INFO[Op.PUSH] = _info(Op.PUSH, Format.R, is_mem_write=True)
INFO[Op.POP] = _info(Op.POP, Format.RD, is_mem_read=True)
INFO[Op.J] = _info(Op.J, Format.I, is_control=True, is_uncond=True)
INFO[Op.JR] = _info(Op.JR, Format.R, is_control=True, is_uncond=True)
INFO[Op.CALL] = _info(Op.CALL, Format.I, is_control=True, is_uncond=True,
                      is_call=True)
INFO[Op.CALLR] = _info(Op.CALLR, Format.R, is_control=True, is_uncond=True,
                       is_call=True)
INFO[Op.RET] = _info(Op.RET, Format.NONE, is_control=True, is_uncond=True,
                     is_ret=True)

#: Lowercase mnemonic -> opcode, for the assembler.
MNEMONICS: dict[str, Op] = {op.name.lower(): op for op in INFO}

#: Opcodes that write ``rd``.
WRITES_RD = frozenset(
    op for op, info in INFO.items()
    if info.format in (Format.RRR, Format.RRI, Format.RI, Format.MEM_L,
                       Format.RD)
)

#: Registers an opcode writes *besides* its explicit ``rd`` operand:
#: PUSH/POP move the stack pointer, calls write the link register, and
#: SYSCALL delivers its result in ``rv``.  Together with
#: :data:`WRITES_RD` this is the single source of truth for register
#: write-sets; consumers must not re-derive it from format names.
IMPLICIT_WRITES: dict[Op, tuple[int, ...]] = {
    Op.PUSH: (SP,),
    Op.POP: (SP,),
    Op.CALL: (RA,),
    Op.CALLR: (RA,),
    Op.SYSCALL: (RV,),
}


def written_registers(op: Op, rd: int = 0) -> tuple[int, ...]:
    """Architectural registers ``op`` writes, given its decoded ``rd``.

    Register 0 is hardwired to zero, so it is never reported even when
    it appears as the encoded destination (stores, for example, encode
    their value register in ``rt`` and leave ``rd`` zero).
    """
    dests: tuple[int, ...] = ()
    if rd != 0 and op in WRITES_RD:
        dests = (rd,)
    return dests + IMPLICIT_WRITES.get(op, ())

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit ``value`` as two's-complement signed."""
    return value - (1 << 64) if value & SIGN64 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into the unsigned 64-bit register domain."""
    return value & MASK64
