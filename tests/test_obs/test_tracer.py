"""Tracer core: span nesting, instants, synthesis, track allocation."""

import gc
import sys

from repro.obs import (ensure_tracer, NULL_METRICS, NULL_TRACER, Tracer,
                       TrackAllocator)


class TestSpanNesting:
    def test_parent_ids_follow_lexical_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["outer"].parent_id == 0
        assert by_name["middle"].parent_id == outer.span_id
        assert by_name["inner"].parent_id == middle.span_id
        assert by_name["sibling"].parent_id == outer.span_id
        assert inner.span_id != sibling.span_id

    def test_records_appear_in_close_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [r.name for r in tracer.records] == ["b", "a"]

    def test_instant_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("phase") as phase:
            tracer.instant("tick", args={"n": 1})
        tick = next(r for r in tracer.records if r.name == "tick")
        assert tick.is_instant
        assert tick.parent_id == phase.span_id
        assert tick.args == {"n": 1}

    def test_out_of_order_close_drops_stack_tail(self):
        tracer = Tracer()
        outer = tracer.span("outer").__enter__()
        inner = tracer.span("inner").__enter__()
        outer.close()  # closes outer while inner is still open
        with tracer.span("next") as nxt:
            pass
        assert nxt.parent_id == 0  # stack was unwound past inner
        inner.close()  # harmless: no longer on the stack
        assert len(tracer.records) == 3

    def test_close_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once").__enter__()
        span.close()
        span.close()
        assert len(tracer.records) == 1

    def test_timestamps_are_monotonic_and_contain_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert 0.0 <= outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration >= 0.0

    def test_span_set_attaches_args(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set("k", 3)
        assert tracer.records[0].args == {"k": 3}

    def test_add_span_synthesizes_closed_record(self):
        tracer = Tracer()
        parent = tracer.add_span("slice", 1.0, 3.0, track=2)
        tracer.add_span("slice.run", 1.5, 3.0, track=2, parent_id=parent)
        run = tracer.records[1]
        assert run.parent_id == parent
        assert run.track == 2
        assert run.duration == 1.5

    def test_mark_and_total(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        mark = tracer.mark()
        with tracer.span("x"):
            pass
        assert len(tracer.records_since(mark)) == 1
        assert tracer.total("x") == sum(
            r.duration for r in tracer.records)


class TestEnsureTracer:
    def test_passthrough_for_live_tracer(self):
        tracer = Tracer()
        assert ensure_tracer(tracer) is tracer

    def test_fresh_tracer_for_none_and_null(self):
        assert isinstance(ensure_tracer(None), Tracer)
        assert isinstance(ensure_tracer(NULL_TRACER), Tracer)
        assert ensure_tracer(None) is not ensure_tracer(None)


class TestNullPath:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("phase") as span:
            span.set("k", 1)
            NULL_TRACER.instant("tick")
        NULL_TRACER.add_span("s", 0.0, 1.0)
        assert NULL_TRACER.records == ()
        assert span.duration == 0.0
        assert NULL_TRACER.total("phase") == 0.0

    def test_disabled_path_allocates_nothing(self):
        """The null backends must be allocation-free on the hot path."""
        def hot_loop(n):
            for _ in range(n):
                with NULL_TRACER.span("slice.run"):
                    NULL_TRACER.instant("tick")
                NULL_METRICS.inc("pin.cache.hits")
                NULL_METRICS.observe("pin.jit.trace_ins", 7)
        hot_loop(100)  # warm up code objects, method caches
        gc.collect()
        before = sys.getallocatedblocks()
        hot_loop(10_000)
        gc.collect()
        after = sys.getallocatedblocks()
        # Zero net blocks modulo interpreter noise (specializing
        # interpreter warm-up, gc internals).
        assert after - before <= 8


class TestTrackAllocator:
    def test_sequential_intervals_share_one_track(self):
        tracks = TrackAllocator()
        assert tracks.place(0.0, 1.0) == 1
        assert tracks.place(1.0, 2.0) == 1
        assert tracks.place(2.5, 3.0) == 1
        assert tracks.num_tracks == 1

    def test_overlapping_intervals_fan_out(self):
        tracks = TrackAllocator()
        assert tracks.place(0.0, 2.0) == 1
        assert tracks.place(1.0, 3.0) == 2
        assert tracks.place(1.5, 2.5) == 3
        # First track is free again at t=2.0.
        assert tracks.place(2.0, 4.0) == 1
        assert tracks.num_tracks == 3

    def test_first_track_offset(self):
        tracks = TrackAllocator(first_track=5)
        assert tracks.place(0.0, 1.0) == 5
        assert tracks.place(0.5, 1.5) == 6
