"""The differential replay audit: oracle correctness and sensitivity.

Two families of tests:

* **soundness** — a healthy pipeline run must audit divergence-free,
  across sequential/worker and warm/cold configurations;
* **sensitivity (mutation tests)** — every divergence kind in the
  taxonomy must actually fire when the corresponding lie is planted,
  either via the compare-level mutator registry (fast, surgical) or via
  ``-spinject tamper``/``corrupt`` through the full pipeline.  An oracle
  that cannot detect a seeded bug is worse than no oracle.
"""

from __future__ import annotations

import copy
from types import SimpleNamespace

import pytest

from repro.machine import Kernel, SyscallRecord
from repro.superpin import (compare_run, FaultPlan, record_reference,
                            RecordedSyscall, run_serial_baseline,
                            run_superpin, SliceEnd, SuperPinConfig)
from repro.tools import ICount2

from repro.isa import assemble
from tests.conftest import MULTISLICE

SEED = 7


def _audited_config(**overrides) -> SuperPinConfig:
    base = dict(spmsec=400, clock_hz=10_000, spaudit=True, spmetrics=True)
    base.update(overrides)
    return SuperPinConfig(**base)


@pytest.fixture(scope="module")
def clean_run():
    """One audited multislice run plus its reference and serial legs."""
    program = assemble(MULTISLICE)
    config = _audited_config()
    report = run_superpin(program, ICount2(), config,
                          kernel=Kernel(seed=SEED))
    guard = report.timeline.total_instructions * 2 + 100_000
    reference = record_reference(
        program, Kernel(seed=SEED),
        [b.master_instructions for b in report.timeline.boundaries],
        max_instructions=guard)
    serial = run_serial_baseline(program, ICount2(), Kernel(seed=SEED),
                                 max_instructions=guard)
    return report, reference, serial


def _clone(report):
    """A mutable stand-in exposing exactly what compare_run reads."""
    return SimpleNamespace(
        timeline=copy.deepcopy(report.timeline),
        signatures=report.signatures,
        slices=copy.deepcopy(report.slices),
        degraded_slices=list(report.degraded_slices),
        tool=copy.deepcopy(report.tool),
    )


class TestSoundness:
    def test_clean_run_is_divergence_free(self, clean_run):
        report, reference, serial = clean_run
        audit = compare_run(report, reference, serial)
        assert audit.ok, audit.summary()
        assert audit.checks > 100
        assert audit.slices_checked == report.num_slices

    def test_pipeline_audit_attached_and_counted(self, clean_run):
        report, _, _ = clean_run
        assert report.audit is not None and report.audit.ok
        counters = report.metrics.counters
        assert counters["superpin.audit.checks"] == report.audit.checks
        assert counters.get("superpin.audit.divergences", 0) == 0

    def test_reference_matches_master_shape(self, clean_run):
        report, reference, _ = clean_run
        timeline = report.timeline
        assert len(reference.checkpoints) == len(timeline.boundaries)
        assert reference.total_instructions == timeline.total_instructions
        assert reference.exit_code == timeline.exit_code
        assert not reference.truncated

    def test_serial_baseline_agrees(self, clean_run):
        report, reference, serial = clean_run
        assert serial.completed
        assert serial.instructions == reference.total_instructions
        assert serial.tool_report == report.tool.report()

    def test_report_json_round_trip(self, clean_run):
        import json
        report, reference, serial = clean_run
        audit = compare_run(report, reference, serial)
        blob = json.loads(json.dumps(audit.to_json()))
        assert blob["ok"] is True
        assert blob["checks"] == audit.checks

    def test_truncated_reference_is_a_divergence(self, clean_run):
        report, _, serial = clean_run
        program = assemble(MULTISLICE)
        short = record_reference(
            program, Kernel(seed=SEED),
            [b.master_instructions for b in report.timeline.boundaries],
            max_instructions=50)  # nowhere near exit
        assert short.truncated
        audit = compare_run(report, short, serial)
        assert "reference.truncated" in audit.by_kind()


def _fake_record(retval=12345):
    return RecordedSyscall(
        record=SyscallRecord(number=9, args=(retval, 0, 0), retval=retval,
                             mem_writes=(), klass="replay"),
        global_index=999)


#: kind -> mutator planting exactly the lie that kind must catch.
MUTATORS = {
    "slice.icount": lambda r: setattr(
        r.slices[1], "instructions", r.slices[1].instructions + 1),
    "slice.end_pc": lambda r: setattr(
        r.slices[1], "end_pc", r.slices[1].end_pc ^ 1),
    "signature.pc": lambda r: setattr(
        r.slices[1], "end_pc", r.slices[1].end_pc ^ 1),
    "slice.end_state": lambda r: setattr(
        r.slices[1], "end_cpu_hash", "bogus"),
    "slice.reason": lambda r: setattr(
        r.slices[1], "reason", SliceEnd.TOOL_END),
    "syscall.stream": lambda r: setattr(
        r.slices[1], "syscall_digest", "bogus"),
    "syscall.leftover": lambda r: setattr(
        r.slices[1], "leftover_records", 2),
    "slice.missing": lambda r: r.slices.pop(1),
    "boundary.pc": lambda r: _shift_boundary_pc(r, 1),
    "boundary.cpu": lambda r: _scramble_boundary_regs(r, 1),
    "syscall.recorded": lambda r:
        r.timeline.intervals[0].records.append(_fake_record()),
    "syscall.mutated": lambda r:
        r.timeline.intervals[0].records.append(_fake_record()),
    "syscall.count": lambda r: setattr(
        r.timeline.intervals[0], "syscalls",
        r.timeline.intervals[0].syscalls + 1),
    "interval.icount": lambda r: setattr(
        r.timeline.intervals[0], "instructions",
        r.timeline.intervals[0].instructions + 1),
    "exit_code": lambda r: setattr(r.timeline, "exit_code", 98),
    "icount.total": lambda r: setattr(
        r.timeline, "total_instructions",
        r.timeline.total_instructions + 5),
    "stdout": lambda r: r.timeline.kernel.stdout.append(ord("!")),
    # SharedArea deepcopies hand back the same object (that is the
    # point of a shared area), so mutating the tool's counts would leak
    # into the module-scoped fixture; swap in an independent stand-in.
    "tool.results": lambda r: setattr(
        r, "tool", SimpleNamespace(
            report=lambda total=r.tool.total: {"icount": total + 1})),
}


def _shift_boundary_pc(r, i):
    pc, regs = r.timeline.boundaries[i].cpu_snapshot
    r.timeline.boundaries[i].cpu_snapshot = (pc + 1, regs)


def _scramble_boundary_regs(r, i):
    pc, regs = r.timeline.boundaries[i].cpu_snapshot
    scrambled = (regs[0],) + (regs[1] ^ 0xDEAD,) + regs[2:]
    r.timeline.boundaries[i].cpu_snapshot = (pc, scrambled)


class TestMutationSensitivity:
    """Every taxonomy kind fires for its planted lie — and only lies
    fire: the unmutated clone stays clean (checked in TestSoundness)."""

    @pytest.mark.parametrize("kind", sorted(MUTATORS))
    def test_mutation_detected(self, clean_run, kind):
        report, reference, serial = clean_run
        clone = _clone(report)
        MUTATORS[kind](clone)
        audit = compare_run(clone, reference, serial)
        assert not audit.ok
        assert kind in audit.by_kind(), (
            f"expected {kind}, got {audit.by_kind()}")

    def test_clone_itself_is_clean(self, clean_run):
        report, reference, serial = clean_run
        audit = compare_run(_clone(report), reference, serial)
        assert audit.ok, audit.summary()


class TestInjectedFaults:
    """Full-pipeline mutation tests through -spinject."""

    def test_tamper_is_caught_sequential(self):
        program = assemble(MULTISLICE)
        config = _audited_config(fault_plan=FaultPlan.parse("tamper@1"))
        report = run_superpin(program, ICount2(), config,
                              kernel=Kernel(seed=SEED))
        audit = report.audit
        assert not audit.ok
        kinds = audit.by_kind()
        assert "slice.icount" in kinds and "slice.end_state" in kinds
        assert report.metrics.counters["superpin.audit.divergences"] > 0

    def test_tamper_is_caught_with_workers(self):
        program = assemble(MULTISLICE)
        config = _audited_config(spworkers=2,
                                 fault_plan=FaultPlan.parse("tamper@2"))
        report = run_superpin(program, ICount2(), config,
                              kernel=Kernel(seed=SEED))
        assert not report.audit.ok
        assert any(d.slice_index == 2
                   for d in report.audit.divergences)

    def test_unrecoverable_corrupt_degrade_is_caught(self):
        program = assemble(MULTISLICE)
        config = _audited_config(
            spfaults="degrade",
            fault_plan=FaultPlan.parse("corrupt@1:*"))
        report = run_superpin(program, ICount2(), config,
                              kernel=Kernel(seed=SEED))
        assert report.degraded_slices == [1]
        kinds = report.audit.by_kind()
        assert "slice.missing" in kinds
        # The hole also shows up as a wrong merged tool total.
        assert "tool.results" in kinds
