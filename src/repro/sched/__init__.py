"""Multiprocessor timing: event simulation, machine model, cost model."""

from .events import simulate
from .machine_model import MachineModel, PAPER_MACHINE
from .stats import SliceSpan, TimingReport
from .timing import CostModel, DEFAULT_COST_MODEL

__all__ = [
    "simulate", "MachineModel", "PAPER_MACHINE", "SliceSpan",
    "TimingReport", "CostModel", "DEFAULT_COST_MODEL",
]
