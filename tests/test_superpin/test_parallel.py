"""Two-phase slice execution and the ``-spworkers`` process fan-out.

The acceptance property: ``-spworkers N`` must be *functionally
invisible* — the same merged tool output, detection statistics and
per-slice figures as the sequential in-process path, for any N.
"""

import pickle

import pytest

from repro.errors import ConfigError
from repro.isa import assemble
from repro.machine import Kernel
from repro.superpin import (AutoMerge, parse_switches, resolve_shared_areas,
                            run_superpin, SharedArea, SPControl,
                            SuperPinConfig)
from repro.tools import ICount2, ITrace
from repro.workloads import build
from tests.conftest import MULTISLICE

# The quickstart example's guest (examples/quickstart.py), inlined so the
# parity tests cover the exact program the README walks through.
QUICKSTART = """
.entry main
main:
    li   s0, 0
    li   s1, 50
outer:
    li   t0, 0
    li   t1, 500
    call kernel
    li   a0, SYS_TIME
    syscall
    inc  s0
    blt  s0, s1, outer
    li   a0, SYS_WRITE
    li   a1, FD_STDOUT
    la   a2, msg
    li   a3, 3
    syscall
    li   a0, SYS_EXIT
    li   a1, 0
    syscall

kernel:
    push ra
loop:
    st   t0, 0x8000(t0)
    ld   t2, 0x8000(t0)
    add  t3, t3, t2
    addi t0, t0, 3
    blt  t0, t1, loop
    pop  ra
    ret

.data
msg: .ascii "ok\\n"
"""


def _slice_fingerprint(report):
    """Everything a slice reports that must not depend on how it ran."""
    return [(s.index, s.reason, s.exact, s.instructions,
             s.expected_instructions, s.traces_executed, s.analysis_calls,
             s.compiles, s.compiled_ins, s.shared_cache_reuses,
             s.replayed_syscalls, s.emulated_syscalls, s.cow_faults,
             s.compile_log)
            for s in report.slices]


def _run_pair(program, tool_cls, workers=2, **config_kwargs):
    """Run sequentially and with workers; return both (report, tool)."""
    config_kwargs.setdefault("spmsec", 500)
    config_kwargs.setdefault("clock_hz", 10_000)
    out = []
    for spworkers in (0, workers):
        tool = tool_cls()
        config = SuperPinConfig(spworkers=spworkers, **config_kwargs)
        report = run_superpin(program, tool, config, kernel=Kernel(seed=42))
        out.append((report, tool))
    return out


class TestParallelParity:
    @pytest.mark.parametrize("source", [QUICKSTART, MULTISLICE],
                             ids=["quickstart", "multislice"])
    def test_icount_identical_to_sequential(self, source):
        program = assemble(source)
        (seq_report, seq_tool), (par_report, par_tool) = _run_pair(
            program, ICount2)
        assert par_tool.total == seq_tool.total
        assert par_report.exit_code == seq_report.exit_code
        assert par_report.stdout == seq_report.stdout
        assert par_report.num_slices == seq_report.num_slices >= 3
        assert par_report.all_exact and seq_report.all_exact
        assert par_report.detection_summary() \
            == seq_report.detection_summary()
        assert _slice_fingerprint(par_report) \
            == _slice_fingerprint(seq_report)
        assert par_report.signatures == seq_report.signatures

    def test_icount_workload_identical(self):
        built = build("gzip", clock_hz=10_000, scale=0.2)
        (seq_report, seq_tool), (par_report, par_tool) = _run_pair(
            built.program, ICount2, workers=3, spmsec=200)
        assert par_tool.total == seq_tool.total
        assert par_report.stdout == seq_report.stdout
        assert par_report.detection_summary() \
            == seq_report.detection_summary()
        assert _slice_fingerprint(par_report) \
            == _slice_fingerprint(seq_report)

    def test_manual_merge_tool_identical(self):
        """ITrace merges via slice-end writes into a CONCAT-style shared
        stream — the Figure-2 manual pattern, which depends on unpickled
        contexts resolving back to the canonical areas."""
        program = assemble(MULTISLICE)
        (seq_report, seq_tool), (par_report, par_tool) = _run_pair(
            program, ITrace)
        assert par_tool.trace == seq_tool.trace
        assert _slice_fingerprint(par_report) \
            == _slice_fingerprint(seq_report)

    def test_timing_model_identical(self):
        """The virtual-time simulation consumes only slice figures, so
        modeled cycles must not depend on how the slices actually ran."""
        program = assemble(MULTISLICE)
        (seq_report, _), (par_report, _) = _run_pair(program, ICount2)
        assert par_report.timing.total_cycles \
            == seq_report.timing.total_cycles
        assert par_report.timing.breakdown() \
            == seq_report.timing.breakdown()

    def test_shared_cache_attribution_order_independent(self):
        """§8 shared-cache figures come from the slice-ordered post-pass,
        so they are identical between sequential and parallel runs."""
        program = assemble(MULTISLICE)
        (seq_report, seq_tool), (par_report, par_tool) = _run_pair(
            program, ICount2, spsharedcache=True)
        assert par_tool.total == seq_tool.total
        assert _slice_fingerprint(par_report) \
            == _slice_fingerprint(seq_report)
        # The post-pass actually re-attributed: later slices recompile
        # the hot loop, so someone must have recorded reuses.
        assert sum(s.shared_cache_reuses for s in par_report.slices) > 0
        # First compilation of each trace is charged exactly once.
        seq_logs = [entry for s in seq_report.slices
                    for entry in s.compile_log]
        assert sum(s.compiles for s in seq_report.slices) \
            == len(set(seq_logs))


class TestSliceTimings:
    def test_sequential_timings(self, multislice_program):
        tool = ICount2()
        report = run_superpin(multislice_program, tool,
                              SuperPinConfig(spmsec=500, clock_hz=10_000,
                                             spworkers=0,
                                             spfaults="failfast"),
                              kernel=Kernel(seed=42))
        assert [t.index for t in report.slice_timings] \
            == list(range(report.num_slices))
        assert all(t.run_seconds > 0 for t in report.slice_timings)
        # No process boundary was crossed, so no pickle/fork cost.
        assert all(t.pickle_seconds == 0 and t.fork_seconds == 0
                   for t in report.slice_timings)
        assert report.signature_phase_seconds > 0
        assert report.slice_phase_seconds \
            >= sum(t.run_seconds for t in report.slice_timings)
        assert 0 < report.measured_parallelism <= 1.0

    def test_parallel_timings(self, multislice_program):
        tool = ICount2()
        report = run_superpin(multislice_program, tool,
                              SuperPinConfig(spmsec=500, clock_hz=10_000,
                                             spworkers=2),
                              kernel=Kernel(seed=42))
        assert all(t.run_seconds > 0 for t in report.slice_timings)
        assert all(t.pickle_seconds > 0 for t in report.slice_timings)
        assert all(t.fork_seconds > 0 for t in report.slice_timings)
        wall = report.wallclock_summary()
        assert wall["slice_phase_seconds"] > 0
        assert wall["slice_pickle_seconds"] > 0
        assert wall["measured_parallelism"] > 0
        assert all(t.total_seconds >= t.run_seconds
                   for t in report.slice_timings)


class TestSpworkersSwitch:
    def test_parse(self):
        config = parse_switches(["-spworkers", "2"])
        assert config.spworkers == 2

    def test_default_sequential(self, monkeypatch):
        monkeypatch.delenv("SUPERPIN_SPWORKERS", raising=False)
        assert SuperPinConfig().spworkers == 0
        assert parse_switches([]).spworkers == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError, match="-spworkers"):
            SuperPinConfig(spworkers=-1)
        with pytest.raises(ConfigError, match="-spworkers"):
            parse_switches(["-spworkers", "-3"])

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_switches(["-spworkers", "two"])


class TestSharedAreaPickling:
    """The worker-boundary contract for shared areas (see sharedmem)."""

    def test_plain_unpickle_builds_private_copy(self):
        area = SharedArea("area0", 2, AutoMerge.ADD)
        area.data = [7, 9]
        clone = pickle.loads(pickle.dumps(area))
        assert clone is not area
        assert clone.data == [7, 9]
        assert clone.auto_merge is AutoMerge.ADD
        clone[0] = 99  # worker-side writes never reach the parent
        assert area[0] == 7

    def test_resolving_unpickle_returns_canonical_area(self):
        sp = SPControl(SuperPinConfig())
        area = sp.SP_CreateSharedArea([0], 1, AutoMerge.ADD)
        blob = pickle.dumps(area)
        with resolve_shared_areas(sp.areas):
            resolved = pickle.loads(blob)
        assert resolved is area

    def test_resolution_scope_is_restored(self):
        sp = SPControl(SuperPinConfig())
        area = sp.SP_CreateSharedArea([0], 1, AutoMerge.ADD)
        blob = pickle.dumps(area)
        with resolve_shared_areas(sp.areas):
            pass
        assert pickle.loads(blob) is not area

    def test_references_inside_one_pickle_stay_shared(self):
        area = SharedArea("area0", 1)
        pair = pickle.loads(pickle.dumps((area, area)))
        assert pair[0] is pair[1]


class _Span:
    """Minimal span-record stand-in for the timings projection."""

    def __init__(self, name, slice_tag, duration=0.5):
        self.name = name
        self.args = {"slice": slice_tag}
        self.duration = duration


class TestTimingsProjectionGuard:
    """Regression: the slice-tag guard admitted bools (True credited
    slice 1) and silently dropped out-of-range indices."""

    def test_bool_slice_tag_is_dropped_not_credited(self):
        from repro.superpin.parallel import slice_timings_from_records
        records = [_Span("slice.run", True, duration=2.0),
                   _Span("slice.run", 1, duration=0.25)]
        timings = slice_timings_from_records(records, 2)
        # True must NOT alias slice 1 (bool is an int subclass).
        assert timings[1].run_seconds == 0.25
        assert timings[0].run_seconds == 0.0

    def test_out_of_range_tags_counted_as_dropped(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.superpin.parallel import slice_timings_from_records
        metrics = MetricsRegistry()
        records = [_Span("slice.run", 7), _Span("slice.fork", -1),
                   _Span("slice.run", 0, duration=0.125)]
        timings = slice_timings_from_records(records, 2, metrics=metrics)
        assert timings[0].run_seconds == 0.125
        assert metrics.counters.get("superpin.timings.dropped") == 2

    def test_bool_tags_counted_as_dropped(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.superpin.parallel import slice_timings_from_records
        metrics = MetricsRegistry()
        records = [_Span("slice.run", False)]
        slice_timings_from_records(records, 2, metrics=metrics)
        assert metrics.counters.get("superpin.timings.dropped") == 1

    def test_untagged_and_foreign_spans_are_not_dropped_records(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.superpin.parallel import slice_timings_from_records
        metrics = MetricsRegistry()

        class Foreign:
            name = "signature"
            args = {"boundary": 1}
            duration = 1.0

        class Untagged:
            name = "slice.run"
            args = None
            duration = 1.0

        slice_timings_from_records([Foreign(), Untagged()], 2,
                                   metrics=metrics)
        # Spans that never claimed a slice tag are simply foreign — only
        # spans with a *bad* slice tag count as dropped.
        assert "superpin.timings.dropped" not in metrics.counters
