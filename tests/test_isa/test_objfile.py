"""Binary object-file format round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LoaderError
from repro.isa import assemble, objfile, Program, Segment
from repro.machine import Kernel, load_program, run_to_completion
from tests.conftest import FACT, MULTISLICE


def _roundtrip(program: Program) -> Program:
    return objfile.loads(objfile.dumps(program))


class TestRoundTrip:
    def test_assembled_program(self):
        program = assemble(MULTISLICE)
        clone = _roundtrip(program)
        assert clone.entry == program.entry
        assert clone.symbols == program.symbols
        assert [(s.base, s.words, s.name) for s in clone.segments] \
            == [(s.base, s.words, s.name) for s in program.segments]
        assert clone.text_base == program.text_base
        assert clone.text_end == program.text_end

    def test_loaded_clone_runs_identically(self):
        program = assemble(FACT)
        clone = _roundtrip(program)
        a = load_program(program, Kernel())
        b = load_program(clone, Kernel())
        run_to_completion(a)
        run_to_completion(b)
        assert a.exit_code == b.exit_code == 3628800

    def test_file_save_load(self, tmp_path):
        program = assemble(FACT)
        path = tmp_path / "fact.bin"
        objfile.save(program, str(path))
        clone = objfile.load(str(path))
        assert clone.symbols == program.symbols

    def test_magic_detection(self):
        program = assemble(FACT)
        data = objfile.dumps(program)
        assert objfile.is_object_file(data)
        assert not objfile.is_object_file(b".entry main")


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(LoaderError, match="magic"):
            objfile.loads(b"ELF!" + b"\x00" * 30)

    def test_truncated(self):
        program = assemble(FACT)
        data = objfile.dumps(program)
        with pytest.raises(LoaderError, match="truncated"):
            objfile.loads(data[:-5])

    def test_trailing_garbage(self):
        program = assemble(FACT)
        data = objfile.dumps(program)
        with pytest.raises(LoaderError, match="trailing"):
            objfile.loads(data + b"\x00")

    def test_bad_version(self):
        program = assemble(FACT)
        data = bytearray(objfile.dumps(program))
        data[4] = 99  # version field
        with pytest.raises(LoaderError, match="version"):
            objfile.loads(bytes(data))


@settings(max_examples=25, deadline=None)
@given(entry=st.integers(0, 2 ** 40),
       symbols=st.dictionaries(
           st.text(min_size=1, max_size=20).filter(str.isprintable),
           st.integers(0, 2 ** 48), max_size=8),
       words=st.lists(st.integers(0, 2 ** 64 - 1), min_size=1,
                      max_size=64),
       base=st.integers(0, 2 ** 32))
def test_roundtrip_property(entry, symbols, words, base):
    program = Program(entry=entry, symbols=dict(symbols))
    program.add_segment(Segment(base, tuple(words), name=".text"))
    clone = _roundtrip(program)
    assert clone.entry == entry
    assert clone.symbols == symbols
    assert clone.segments[0].words == tuple(words)
    assert clone.segments[0].base == base
