"""SuperPin runtime: the top-level orchestrator.

``run_superpin(program, tool, config)`` performs the full pipeline:

1. **Setup** — the tool registers itself through the SP API (§5).
2. **Control phase** — the master runs uninstrumented under the control
   process, which records syscalls and cuts timeslices (§4.1–§4.3).
3. **Signature phase** — each boundary's signature is recorded from its
   snapshot, with the adaptive quick-register lookahead (§4.4).
4. **Slice phase** — every timeslice re-executes under instrumentation
   from its fork snapshot until it detects the next signature (§3).
5. **Merge phase** — slice results fold into the shared areas in slice
   order; the master tool's ``fini`` runs last (§4.5).
6. **Timing phase** — the discrete-event scheduler replays the run
   against the machine model to produce wall-clock figures (§6).

Functionally the pipeline is sequential; the *timing* phase is where the
paper's parallelism lives.  This is sound because slice contents are
fully determined at fork time (record/playback removes every kernel
dependence), so execution order cannot change any result — the property
SuperPin itself relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..isa.program import Program
from ..machine.cpu import CpuState
from ..machine.kernel import Kernel
from ..pin.pintool import Pintool
from ..sched.events import simulate
from ..sched.machine_model import MachineModel, PAPER_MACHINE
from ..sched.stats import TimingReport
from ..sched.timing import CostModel, DEFAULT_COST_MODEL
from .api import SliceToolContext, SPControl
from .control import ControlProcess, MasterTimeline
from .merge import merge_slices
from .signature import (DEFAULT_QUICK_REGS, record_signature,
                        select_quick_registers, Signature)
from .slices import run_slice, SliceResult
from .switches import SuperPinConfig


@dataclass
class SuperPinReport:
    """Everything a caller might want to know about one SuperPin run."""

    config: SuperPinConfig
    timeline: MasterTimeline
    slices: list[SliceResult]
    signatures: list[Signature]
    tool: Pintool
    timing: TimingReport | None
    exit_code: int

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def total_slice_instructions(self) -> int:
        return sum(s.instructions for s in self.slices)

    @property
    def all_exact(self) -> bool:
        """True when every slice covered exactly its master interval."""
        return all(s.exact for s in self.slices)

    @property
    def stdout(self) -> str:
        return self.timeline.kernel.stdout_text()

    def detection_summary(self) -> dict[str, float]:
        """Aggregate §4.4 statistics across all detecting slices."""
        quick = sum(s.detection.quick_checks for s in self.slices
                    if s.detection)
        full = sum(s.detection.full_checks for s in self.slices
                   if s.detection)
        stack = sum(s.detection.stack_checks for s in self.slices
                    if s.detection)
        return {
            "quick_checks": quick,
            "full_checks": full,
            "stack_checks": stack,
            "full_check_rate": (full / quick) if quick else 0.0,
        }


def run_superpin(program: Program, tool: Pintool,
                 config: SuperPinConfig | None = None,
                 kernel: Kernel | None = None,
                 machine: MachineModel = PAPER_MACHINE,
                 cost: CostModel = DEFAULT_COST_MODEL,
                 compute_timing: bool = True) -> SuperPinReport:
    """Run ``program`` with ``tool`` under SuperPin end to end."""
    config = config or SuperPinConfig()
    if not config.sp:
        raise ConfigError("run_superpin called with sp disabled; "
                          "use repro.pin.run_with_pin instead")

    # 1. Tool setup through the SP API.
    sp = SPControl(config)
    tool.setup(sp)
    if not sp.initialized:
        raise ConfigError(
            f"tool {tool.name!r} did not call SP_Init; SuperPin requires "
            f"tools written against the SP API (paper §5)")
    template = SliceToolContext.from_control(tool, sp)

    # 2. Control phase: run the master, cut timeslices.
    control = ControlProcess(program, config, kernel=kernel)
    timeline = control.run()

    # 3+4. Signatures and slices.  Slice k needs boundary k+1's signature,
    # which must be captured before slice k+1 mutates its fork snapshot —
    # running in slice order satisfies both.
    signatures: list[Signature] = []
    results: list[SliceResult] = []
    boundaries = timeline.boundaries
    shared_directory = None
    if config.spsharedcache:
        from .sharedcache import SharedCodeCacheDirectory
        shared_directory = SharedCodeCacheDirectory()
    for k, interval in enumerate(timeline.intervals):
        end_signature: Signature | None = None
        if k + 1 < len(boundaries):
            end_signature = _record_boundary_signature(
                boundaries[k + 1], config)
            signatures.append(end_signature)
        results.append(run_slice(boundaries[k], interval, end_signature,
                                 template, sp, config,
                                 shared_directory=shared_directory))

    # 5. Merge in slice order, then fini on the master tool.
    merge_slices(sp, results)
    tool.fini()

    # 6. Timing.
    timing = (simulate(timeline, results, config, machine=machine,
                       cost=cost) if compute_timing else None)
    return SuperPinReport(
        config=config,
        timeline=timeline,
        slices=results,
        signatures=signatures,
        tool=tool,
        timing=timing,
        exit_code=timeline.exit_code,
    )


def _record_boundary_signature(boundary, config: SuperPinConfig
                               ) -> Signature:
    """Record the signature of a boundary snapshot (recording mode).

    Runs the quick-register lookahead on a scratch fork of the boundary
    snapshot, then captures registers and top-of-stack words.
    """
    cpu = CpuState()
    cpu.restore(boundary.cpu_snapshot)
    quick = None
    adaptive = False
    if config.quickreg_adaptive:
        from ..machine.process import Process
        from .sysrecord import PlaybackHandler
        scratch_proc = Process(cpu.copy(), boundary.mem_fork,
                               syscall_handler=None)
        quick = select_quick_registers(scratch_proc, config)
        adaptive = quick is not None
    return record_signature(cpu, boundary.mem_fork, config,
                            quick_regs=quick or DEFAULT_QUICK_REGS,
                            adaptive=adaptive)
