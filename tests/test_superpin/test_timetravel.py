"""Time-travel debugging over recordings.

The contract under test: ``goto``/``step-back``/``reverse-continue``
resolve purely from the recording artifact (the master is never
re-run), and the materialized state at a given icount is byte-identical
across repeated visits, JIT backends and tier-2 settings — and equal to
the master's own state at that icount (interpreter ground truth).
"""

import shutil

import pytest

from repro.errors import RecordingCorruptError, TimeTravelError
from repro.isa import assemble
from repro.machine import Kernel, load_program
from repro.machine.cpu import fingerprint_state
from repro.machine.interpreter import Interpreter
from repro.superpin import (damage_recording, DebugSession, load_recording,
                            run_superpin, SuperPinConfig, TimeTravelEngine)
from repro.tools import ICount2
from tests.conftest import MULTISLICE

JIT_BACKENDS = ["closure", "source"]
TC2 = [0, 4]

#: Probe icounts: slice starts, syscall-exact landings (763/767/1534),
#: mid-loop interiors, a cross-slice point and the final state.
PROBES = [0, 500, 763, 767, 1534, 5000, 5001, 12345, 29922, 30690]

#: The MULTISLICE inner loop stores s2 at 0x9000+t0; address 0x9002 is
#: written with value 2 once per outer iteration (t0=2, s2=0+2).
WATCH_ADDR = 0x9002
WATCH_VALUE = 2


def _config(**kwargs):
    kwargs.setdefault("spmsec", 500)
    kwargs.setdefault("clock_hz", 10_000)
    return SuperPinConfig(**kwargs)


@pytest.fixture(scope="module")
def program():
    return assemble(MULTISLICE)


@pytest.fixture(scope="module")
def recorded(program, tmp_path_factory):
    path = tmp_path_factory.mktemp("ttd") / "run.sprec"
    run_superpin(program, ICount2(), _config(sprecord=str(path)),
                 kernel=Kernel(seed=42))
    return path


@pytest.fixture(scope="module")
def master_states(program):
    """Interpreter ground truth: the master's state at every probe."""
    out = {}
    for icount in PROBES:
        process = load_program(program, Kernel(seed=42))
        result = Interpreter(process).run(max_instructions=icount)
        assert result.instructions == icount
        out[icount] = process.cpu.snapshot()
    return out


def _engine(path, backend="closure", tc2=0):
    recording = load_recording(path)
    return TimeTravelEngine(recording, SuperPinConfig(
        jit_backend=backend, sptc2=tc2))


class TestGotoDeterminism:
    @pytest.mark.parametrize("backend", JIT_BACKENDS)
    @pytest.mark.parametrize("tc2", TC2)
    def test_repeated_visits_are_byte_identical(self, recorded, backend,
                                                tc2):
        tt = _engine(recorded, backend, tc2)
        first = {}
        for icount in PROBES:
            tt.goto(icount)
            first[icount] = (tt.state_fingerprint(),
                             tuple(tt.read_memory(0x9000, 8)))
        # Revisit in reverse order: every landing must reproduce.
        for icount in reversed(PROBES):
            tt.goto(icount)
            assert (tt.state_fingerprint(),
                    tuple(tt.read_memory(0x9000, 8))) == first[icount], \
                f"icount {icount} drifted on revisit"

    @pytest.mark.parametrize("backend", JIT_BACKENDS)
    @pytest.mark.parametrize("tc2", TC2)
    def test_goto_matches_master_timeline(self, recorded, master_states,
                                          backend, tc2):
        """The replay-side landing equals the master's own state —
        without the master ever being re-run by the engine."""
        tt = _engine(recorded, backend, tc2)
        for icount in PROBES:
            tt.goto(icount)
            pc, regs = master_states[icount]
            assert tt.registers() == (pc, regs), f"icount {icount}"
            assert tt.state_fingerprint() \
                == fingerprint_state(pc, regs)

    def test_goto_rejects_out_of_range(self, recorded):
        tt = _engine(recorded)
        with pytest.raises(TimeTravelError):
            tt.goto(-1)
        with pytest.raises(TimeTravelError):
            tt.goto(tt.total_instructions + 1)


class TestStepping:
    def test_step_and_step_back_are_inverse(self, recorded):
        tt = _engine(recorded)
        tt.goto(1000)
        mark = tt.state_fingerprint()
        tt.step(7)
        tt.step_back(7)
        assert tt.position == 1000
        assert tt.state_fingerprint() == mark

    def test_step_back_run_is_deterministic(self, recorded):
        """A run of single step-backs (the micro-checkpoint fast path)
        visits the same states a cold goto materializes."""
        tt = _engine(recorded)
        tt.goto(2000)
        walked = []
        for _ in range(25):
            tt.step_back()
            walked.append((tt.position, tt.state_fingerprint()))
        cold = _engine(recorded)
        for position, fingerprint in walked:
            cold.goto(position)
            assert cold.state_fingerprint() == fingerprint, position

    def test_step_back_across_slice_boundary(self, recorded):
        tt = _engine(recorded)
        start, _ = tt.recording.slice_span(1)
        tt.goto(start)
        tt.step_back()
        assert tt.position == start - 1
        tt.step()
        assert tt.position == start

    def test_step_past_end_rejected(self, recorded):
        tt = _engine(recorded)
        tt.goto(tt.total_instructions)
        with pytest.raises(TimeTravelError):
            tt.step()
        tt.goto(0)
        with pytest.raises(TimeTravelError):
            tt.step_back()


class TestWatchpoints:
    @pytest.mark.parametrize("backend", JIT_BACKENDS)
    @pytest.mark.parametrize("tc2", TC2)
    def test_watchpoint_in_the_past_finds_last_writer(self, recorded,
                                                      backend, tc2):
        tt = _engine(recorded, backend, tc2)
        hit = tt.last_write_before(WATCH_ADDR, 1534)
        assert hit is not None and hit.icount < 1534
        # The hit is the *about to write* point: the target word changes
        # to the known written value across that single instruction.
        tt.goto(hit.icount)
        assert tt.registers()[0] == hit.pc
        tt.step()
        assert tt.read_memory(WATCH_ADDR)[0] == WATCH_VALUE
        # No later write before the limit: probing between the hit and
        # the limit keeps resolving to the same writer.
        later = tt.last_write_before(WATCH_ADDR, hit.icount + 100)
        assert later is not None and later.icount == hit.icount

    def test_last_write_crosses_slices_backward(self, recorded):
        tt = _engine(recorded)
        tail_start, _ = tt.recording.slice_span(tt.recording.num_slices - 1)
        hit = tt.last_write_before(WATCH_ADDR, tail_start + 100)
        # The tail slice only runs the epilogue syscalls: the writer
        # lives in an earlier slice, found by the backward scan.
        assert hit is not None and hit.icount < tail_start

    def test_no_write_returns_none(self, recorded):
        tt = _engine(recorded)
        assert tt.last_write_before(0xdead00, 30000) is None
        assert tt.last_write_before(WATCH_ADDR, 0) is None

    def test_reverse_continue_to_watchpoint(self, recorded):
        tt = _engine(recorded)
        tt.goto(1534)
        tt.watchpoints.add(WATCH_ADDR)
        event = tt.reverse_continue()
        assert event.kind == "watchpoint"
        assert event.addr == WATCH_ADDR
        assert event.icount < 1534
        hit = tt.last_write_before(WATCH_ADDR, 1534)
        assert event.icount == hit.icount


class TestBreakpoints:
    def test_breakpoint_inside_replayed_syscall_interval(self, recorded):
        """Stopping on (and stepping over) a replayed syscall keeps the
        playback cursor consistent: the landing equals a direct goto."""
        tt = _engine(recorded)
        tt.goto(763)               # next instruction is a syscall
        syscall_pc = tt.registers()[0]
        tt.goto(0)
        tt.breakpoints.add(syscall_pc)
        event = tt.continue_()
        assert (event.kind, event.icount) == ("breakpoint", 763)
        assert tt.registers()[0] == syscall_pc
        # Step over the replayed syscall; cross-check against a cold
        # goto of the post-syscall state.
        tt.step()
        stepped = tt.state_fingerprint()
        cold = _engine(recorded)
        cold.goto(764)
        assert cold.state_fingerprint() == stepped
        # The same pc fires again one outer iteration later.
        event = tt.continue_()
        assert (event.kind, event.icount) == ("breakpoint", 1530)

    def test_continue_without_hits_runs_to_end(self, recorded):
        tt = _engine(recorded)
        tt.goto(0)
        event = tt.continue_()
        assert event.kind == "end"
        assert event.icount == tt.total_instructions

    def test_reverse_continue_without_hits_lands_at_start(self, recorded):
        tt = _engine(recorded)
        tt.goto(5000)
        event = tt.reverse_continue()
        assert (event.kind, event.icount) == ("start", 0)


class TestDegradedRecordings:
    @pytest.fixture()
    def damaged(self, recorded, tmp_path):
        path = tmp_path / "damaged.sprec"
        shutil.copy(recorded, path)
        damage_recording(path, "corrupt", slice_index=2)
        return path

    def test_goto_into_hole_is_taxonomized(self, damaged):
        with pytest.raises(RecordingCorruptError):
            load_recording(damaged)
        recording = load_recording(damaged, tolerate_damaged=True)
        tt = TimeTravelEngine(recording, SuperPinConfig())
        start, end = recording.slice_span(2)
        with pytest.raises(TimeTravelError) as info:
            tt.goto((start + end) // 2)
        assert info.value.kind == "hole"
        # Healthy slices on both sides stay reachable.
        tt.goto(start - 100)
        tt.goto(end + 100)

    def test_scans_skip_holes(self, damaged, recorded):
        recording = load_recording(damaged, tolerate_damaged=True)
        tt = TimeTravelEngine(recording, SuperPinConfig())
        start3, _ = recording.slice_span(3)
        tt.goto(start3 + 10)
        tt.watchpoints.add(WATCH_ADDR)
        event = tt.reverse_continue()
        # The writer inside slice 2 is unknowable; the scan skips the
        # hole and resolves in an earlier healthy slice.
        start2, _ = recording.slice_span(2)
        assert event.kind == "watchpoint"
        assert event.icount < start2


class TestDebugSession:
    SCRIPT = ["info", "goto 1534", "regs", "watch 0x9002",
              "reverse-continue", "mem 0x9000 4",
              "lastwrite 0x9002 1534", "step-back 2", "step 2", "regs"]

    def test_scripted_sessions_are_reproducible(self, recorded):
        recording = load_recording(recorded)
        outputs = []
        for _ in range(2):
            session = DebugSession(recording, SuperPinConfig())
            outputs.append([session.execute(line)
                            for line in self.SCRIPT])
        assert outputs[0] == outputs[1]

    def test_backends_produce_identical_transcripts(self, recorded):
        recording = load_recording(recorded)
        transcripts = []
        for backend in JIT_BACKENDS:
            session = DebugSession(recording, SuperPinConfig(
                jit_backend=backend))
            transcripts.append([session.execute(line)
                                for line in self.SCRIPT])
        assert transcripts[0] == transcripts[1]

    def test_unknown_command_raises(self, recorded):
        session = DebugSession(load_recording(recorded))
        with pytest.raises(TimeTravelError):
            session.execute("bogus 1 2 3")
        with pytest.raises(TimeTravelError):
            session.execute("goto notanumber")

    def test_quit_returns_none(self, recorded):
        session = DebugSession(load_recording(recorded))
        assert session.execute("quit") is None
        assert session.execute("") == []
