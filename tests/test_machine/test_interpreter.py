"""Interpreter: per-opcode semantics, signed arithmetic, control, stops."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ArithmeticFault
from repro.isa import abi, assemble, to_signed
from repro.machine import (Kernel, load_program, run_to_completion,
                           StopReason)
from repro.machine.interpreter import Interpreter
from tests.conftest import run_native


def run_exit_code(body: str, seed: int = 0) -> int:
    """Assemble a snippet that ends by exiting with a value in a1."""
    source = f".entry main\nmain:\n{body}\n"
    program = assemble(source)
    kernel = Kernel(seed=seed)
    process = load_program(program, kernel)
    run_to_completion(process)
    return process.exit_code


def exit_with(value_setup: str) -> int:
    return run_exit_code(
        f"{value_setup}\n    li a0, SYS_EXIT\n    mov a1, t0\n    syscall")


M64 = (1 << 64) - 1


class TestAlu:
    def test_add_wraps(self):
        assert exit_with("    li t1, -1\n    li t2, 2\n"
                        "    add t0, t1, t2") == 1

    def test_sub_negative_wraps(self):
        assert exit_with("    li t1, 1\n    li t2, 2\n"
                        "    sub t0, t1, t2") == M64

    def test_mul(self):
        assert exit_with("    li t1, 1000000\n    li t2, 1000000\n"
                        "    mul t0, t1, t2") == 10 ** 12

    def test_div_truncates_toward_zero(self):
        assert exit_with("    li t1, -7\n    li t2, 2\n"
                        "    div t0, t1, t2") == (-3) & M64

    def test_mod_sign_follows_dividend(self):
        assert exit_with("    li t1, -7\n    li t2, 2\n"
                        "    mod t0, t1, t2") == (-1) & M64

    def test_div_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            exit_with("    li t1, 1\n    li t2, 0\n    div t0, t1, t2")

    def test_logic_ops(self):
        assert exit_with("    li t1, 12\n    li t2, 10\n"
                        "    and t0, t1, t2") == 8
        assert exit_with("    li t1, 12\n    li t2, 10\n"
                        "    or t0, t1, t2") == 14
        assert exit_with("    li t1, 12\n    li t2, 10\n"
                        "    xor t0, t1, t2") == 6

    def test_shifts(self):
        assert exit_with("    li t1, 1\n    li t2, 63\n"
                        "    shl t0, t1, t2") == 1 << 63
        assert exit_with("    li t1, -1\n    li t2, 60\n"
                        "    shr t0, t1, t2") == 15
        assert exit_with("    li t1, -16\n    li t2, 2\n"
                        "    sar t0, t1, t2") == (-4) & M64

    def test_shift_amount_masked_to_63(self):
        assert exit_with("    li t1, 1\n    li t2, 64\n"
                        "    shl t0, t1, t2") == 1  # 64 & 63 == 0

    def test_slt_signed_vs_unsigned(self):
        assert exit_with("    li t1, -1\n    li t2, 1\n"
                        "    slt t0, t1, t2") == 1
        assert exit_with("    li t1, -1\n    li t2, 1\n"
                        "    sltu t0, t1, t2") == 0

    def test_immediates(self):
        assert exit_with("    li t1, 5\n    addi t0, t1, -3") == 2
        assert exit_with("    li t1, 5\n    muli t0, t1, 7") == 35
        assert exit_with("    li t1, 6\n    slti t0, t1, 7") == 1
        assert exit_with("    li t1, -2\n    shri t0, t1, 62") == 3
        assert exit_with("    li t1, -8\n    sari t0, t1, 1") == (-4) & M64

    def test_r0_write_discarded(self):
        assert exit_with("    li zero, 55\n    mov t0, zero") == 0


class TestMemoryOps:
    def test_ld_st(self):
        assert exit_with("    li t1, 77\n    st t1, 0x8000(zero)\n"
                        "    ld t0, 0x8000(zero)") == 77

    def test_negative_offset(self):
        assert exit_with("    li t2, 0x8010\n    li t1, 5\n"
                        "    st t1, -16(t2)\n    ld t0, 0x8000(zero)") == 5

    def test_push_pop_lifo(self):
        assert exit_with("    li t1, 1\n    li t2, 2\n"
                        "    push t1\n    push t2\n"
                        "    pop t0\n    pop t3\n"
                        "    shli t0, t0, 8\n    or t0, t0, t3") \
            == (2 << 8) | 1

    def test_pop_to_r0_discards_but_pops(self):
        assert exit_with("    li t1, 9\n    push t1\n    li t2, 4\n"
                        "    push t2\n    pop zero\n    pop t0") == 9

    def test_sp_starts_at_stack_top(self):
        assert exit_with("    mov t0, sp") == abi.STACK_TOP


class TestControl:
    def test_branches(self, loop_program):
        process, interp, _ = run_native(loop_program)
        assert process.exit_code == sum(range(100))

    def test_call_ret(self, fact_program):
        process, _, _ = run_native(fact_program)
        assert process.exit_code == 3628800

    def test_jr_indirect(self):
        code = ("    la t1, target\n    jr t1\n    li t0, 1\n"
                "target:\n    li t0, 42")
        assert exit_with(code) == 42

    def test_callr(self):
        code = ("    la t1, fn\n    callr t1\n    mov t0, rv\n"
                "    j done\nfn:\n    li rv, 9\n    ret\ndone:")
        assert exit_with(code) == 9

    def test_cond_branch_signed(self):
        code = ("    li t1, -5\n    li t2, 3\n    li t0, 0\n"
                "    bge t1, t2, no\n    li t0, 1\nno:")
        assert exit_with(code) == 1

    def test_cond_branch_unsigned(self):
        code = ("    li t1, -5\n    li t2, 3\n    li t0, 0\n"
                "    bltu t1, t2, no\n    li t0, 1\nno:")
        assert exit_with(code) == 1  # -5 unsigned is huge

    def test_halt_exits_with_rv(self):
        program = assemble(".entry main\nmain:\n    li rv, 5\n    halt\n")
        kernel = Kernel()
        process = load_program(program, kernel)
        run_to_completion(process)
        assert process.exit_code == 5


class TestStops:
    def test_budget_stop_and_resume(self, loop_program):
        kernel = Kernel()
        process = load_program(loop_program, kernel)
        interp = Interpreter(process)
        r1 = interp.run(max_instructions=50)
        assert r1.reason is StopReason.BUDGET and r1.instructions == 50
        r2 = interp.run()
        assert r2.reason is StopReason.EXIT
        assert process.exit_code == sum(range(100))
        assert interp.total_instructions == 50 + r2.instructions

    def test_stop_after_syscall(self, hello_program):
        kernel = Kernel()
        process = load_program(hello_program, kernel)
        interp = Interpreter(process, stop_after_syscall=True)
        r1 = interp.run()
        assert r1.reason is StopReason.SYSCALL
        assert r1.outcome.record.number == abi.SYS_WRITE
        r2 = interp.run()
        assert r2.reason is StopReason.EXIT

    def test_run_after_exit_is_noop(self, hello_program):
        kernel = Kernel()
        process = load_program(hello_program, kernel)
        interp = Interpreter(process)
        interp.run()
        again = interp.run()
        assert again.reason is StopReason.EXIT and again.instructions == 0

    def test_instruction_count_exact(self, loop_program):
        _, interp, _ = run_native(loop_program)
        # li*3 + 100 iterations * 3 + exit li/mov/syscall.
        assert interp.total_instructions == 3 + 100 * 3 + 3


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, M64), b=st.integers(0, M64))
def test_signed_division_reference(a, b):
    """DIV/MOD match C-style truncating semantics for all 64-bit inputs."""
    if b == 0:
        return
    sa, sb = to_signed(a), to_signed(b)
    expected_q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        expected_q = -expected_q
    expected_r = sa - expected_q * sb
    # Build the operands via memory to avoid immediate-width limits.
    source = """
.entry main
main:
    ld t1, 0x8000(zero)
    ld t2, 0x8001(zero)
    div t3, t1, t2
    mod t4, t1, t2
    st t3, 0x8002(zero)
    st t4, 0x8003(zero)
    li a0, SYS_EXIT
    li a1, 0
    syscall
"""
    program = assemble(source)
    kernel = Kernel()
    process = load_program(program, kernel)
    process.mem.write(0x8000, a)
    process.mem.write(0x8001, b)
    run_to_completion(process)
    assert process.mem.read(0x8002) == expected_q & M64
    assert process.mem.read(0x8003) == expected_r & M64
