"""Command-line interface.

::

    superpin run -t icount2 -w gzip -- -sp 1 -spmsec 1000 -spmp 8
    superpin replay -r run.sprec -t icount2,itrace -- -spworkers 2
    superpin figure 3 [--scale 1.0] [--benchmarks gzip,gcc]
    superpin figure all
    superpin list
    superpin asm program.s [--tool icount2]

``superpin run`` mirrors the paper's invocation style: everything after
``--`` is parsed as SuperPin switches (§5's -sp/-spmsec/-spmp/-spsysrecs,
plus ``-spworkers N`` to fan the slice phase out over N host processes).
``superpin replay`` runs one or more tools against a ``-sprecord``
artifact without re-running the master program.
"""

from __future__ import annotations

import argparse
import sys

from .harness.figures import FIGURES
from .harness.report import render_figure
from .machine import Kernel, load_program
from .machine.interpreter import Interpreter
from .pin.pintool import run_with_pin
from .superpin import parse_switches, run_superpin, SuperPinConfig
from .tools import TOOLS
from .workloads import BENCHMARK_NAMES, build


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="superpin",
        description="SuperPin reproduction: fork-parallelized dynamic "
                    "instrumentation (CGO 2007)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload under a tool")
    run_p.add_argument("-t", "--tool", default="icount2",
                       choices=sorted(TOOLS))
    run_p.add_argument("-w", "--workload", required=True,
                       help="suite benchmark name (see 'superpin list')")
    run_p.add_argument("--scale", type=float, default=0.5,
                       help="duration scale factor (default 0.5)")
    run_p.add_argument("--gantt", action="store_true",
                       help="draw the slice schedule (the paper's Fig. 1)")
    # SuperPin switches (-sp/-spmsec/-spmp/-spsysrecs) are collected from
    # the unparsed remainder so the paper's flag style works verbatim.

    replay_p = sub.add_parser(
        "replay", help="replay tools against a -sprecord artifact")
    replay_p.add_argument("-r", "--recording", required=True,
                          help="recording artifact written by -sprecord")
    replay_p.add_argument("-t", "--tools", default="icount2",
                          help="comma-separated tool names (see "
                               "'superpin list')")

    debug_p = sub.add_parser(
        "debug", help="time-travel debugger over a -sprecord artifact")
    debug_p.add_argument("recording",
                         help="recording artifact written by -sprecord")
    debug_p.add_argument("--script", default=None,
                         help="batch command file (one command per line) "
                              "instead of the interactive REPL")
    # -sp* switches (jit backend, tc2, degrade policy) ride in the
    # unparsed remainder, like 'run'.

    fig_p = sub.add_parser("figure", help="regenerate a paper figure")
    fig_p.add_argument("which", choices=sorted(FIGURES) + ["all"])
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--benchmarks", default=None,
                       help="comma-separated subset (figures 3/4/5)")

    sub.add_parser("list", help="list workloads and tools")

    asm_p = sub.add_parser(
        "asm", help="assemble and run an .s file (or a .bin object)")
    asm_p.add_argument("file")
    asm_p.add_argument("-t", "--tool", default=None,
                       choices=sorted(TOOLS))
    asm_p.add_argument("-o", "--output", default=None,
                       help="write a binary object file instead of running")

    dump_p = sub.add_parser("objdump",
                            help="dump an object file (or .s source)")
    dump_p.add_argument("file")

    serve_p = sub.add_parser(
        "serve", help="run the persistent instrumentation daemon")
    serve_p.add_argument("--socket", required=True,
                         help="unix socket path to listen on")
    serve_p.add_argument("--state", required=True,
                         help="state directory (job log, trace store, "
                              "shutdown exports)")
    serve_p.add_argument("--workers", type=int, default=1,
                         help="concurrent jobs (0: accept only)")
    serve_p.add_argument("--queue-depth", type=int, default=64,
                         help="admission-control queue bound")

    submit_p = sub.add_parser(
        "submit", help="submit one job to a running daemon")
    submit_p.add_argument("--socket", required=True)
    submit_p.add_argument("-t", "--tool", default="icount2",
                          choices=sorted(TOOLS))
    submit_p.add_argument("-w", "--workload", default=None,
                          help="suite benchmark name")
    submit_p.add_argument("--asm", default=None,
                          help="assembly source file to submit instead")
    submit_p.add_argument("--scale", type=float, default=0.25)
    submit_p.add_argument("--seed", type=int, default=42)
    submit_p.add_argument("--tenant", default="default")
    submit_p.add_argument("--no-stream", action="store_true",
                          help="enqueue and return without waiting")
    # -sp* switches ride in the unparsed remainder, like 'run'.

    status_p = sub.add_parser(
        "status", help="query (or manage) a running daemon")
    status_p.add_argument("--socket", required=True)
    status_p.add_argument("--job", default=None,
                          help="show one job instead of the summary")
    status_p.add_argument("--cancel", default=None, metavar="JOB",
                          help="cancel a queued or running job")
    status_p.add_argument("--shutdown", action="store_true",
                          help="stop the daemon gracefully")

    args, extra = parser.parse_known_args(argv)
    if args.command == "run":
        return _cmd_run(args, extra)
    if args.command == "replay":
        return _cmd_replay(args, extra)
    if args.command == "submit":
        return _cmd_submit(args, extra)
    if args.command == "debug":
        return _cmd_debug(args, extra)
    if extra:
        parser.error(f"unrecognized arguments: {' '.join(extra)}")
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "asm":
        return _cmd_asm(args)
    if args.command == "objdump":
        return _cmd_objdump(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "status":
        return _cmd_status(args)
    return 2  # pragma: no cover


def _cmd_run(args, extra: list[str]) -> int:
    if args.workload not in BENCHMARK_NAMES:
        print(f"unknown workload {args.workload!r}; see 'superpin list'",
              file=sys.stderr)
        return 2
    switches = [s for s in extra if s != "--"]
    config = parse_switches(switches) if switches else SuperPinConfig()
    built = build(args.workload, clock_hz=config.clock_hz,
                  scale=args.scale)
    tool = TOOLS[args.tool]()

    print(f"workload {args.workload} (scale {args.scale}): "
          f"{built.static_instructions} static instructions, "
          f"{built.rounds} rounds")

    if not config.sp:
        result, vm, kernel = run_with_pin(built.program, tool,
                                          Kernel(seed=42))
        print(f"mode: classic Pin; {result.instructions} instructions, "
              f"{vm.cache.stats.compiles} traces compiled")
        print(f"tool report: {tool.report()}")
        return 0

    report = run_superpin(built.program, tool, config,
                          kernel=Kernel(seed=42))
    timing = report.timing
    seconds = config.seconds
    workers = (f"{config.spworkers} worker processes"
               if config.spworkers else "sequential slice phase")
    print(f"mode: SuperPin ({config.spmp} max slices, "
          f"{config.spmsec} ms timeslice, {workers})")
    print(f"slices: {report.num_slices} "
          f"({sum(1 for s in report.slices if s.exact)} exact)")
    sup = report.supervision_summary()
    if (config.spfaults != "failfast" or config.fault_plan is not None
            or sup["failed_attempts"]):
        degraded = (", degraded: "
                    + ",".join(map(str, report.degraded_slices))
                    if report.degraded_slices else "")
        print(f"faults: policy {config.spfaults}, "
              f"{int(sup['attempts'])} attempts "
              f"({int(sup['failed_attempts'])} failed), "
              f"{int(sup['recovered_slices'])} slices recovered"
              f"{degraded}")
    if report.recording_path:
        print(f"recording: wrote {report.recording_path} "
              f"(id {report.recording_id[:12]})")
    if config.spjournal:
        resumed = report.resumed_slices
        state = (f"resumed {resumed} of {report.num_slices} slices"
                 if config.spresume else "fresh run")
        print(f"journal: {config.spjournal} ({state})")
    print(f"tool report: {tool.report()}")
    instr = report.instrumentation_summary()
    if config.spfilter is not None or config.spsuppress:
        parts = [f"{instr['analysis_calls']} analysis calls"]
        if config.spfilter is not None:
            parts.append(f"filter '{config.spfilter}' skipped "
                         f"{instr['skipped_callbacks']} callbacks "
                         f"({instr['fastpath_traces']} fast-path traces)")
        if config.spsuppress:
            parts.append(f"{instr['summarized_loops']} summarized loops "
                         f"suppressed {instr['suppressed_calls']} calls")
        print("instrumentation: " + ", ".join(parts))
    if config.spsample > 0:
        samp = report.sampling_summary()
        print(f"sampling: 1/{samp['period']} slices instrumented "
              f"({samp['sampled_slices']} sampled, "
              f"{samp['skipped_slices']} tool-free) — tool report is an "
              f"approximation")
    if report.total_warm_mismatches:
        print(f"warm cache: {report.total_warm_mismatches} consistency "
              f"mismatches (those traces compiled cold)")
    if config.sptc2 > 0 and instr["tc2_promotions"]:
        print(f"tier 2: {instr['tc2_promotions']} superblock promotions, "
              f"{instr['tc2_dispatches']} dispatches, "
              f"{instr['tc2_mispredicts']} mispredicts")
    det = report.detection_summary()
    print(f"detection: {det['quick_checks']} quick checks, "
          f"{det['full_checks']} full "
          f"({det['full_check_rate']:.2%} escalation)")
    if timing is None:
        # Degraded runs have holes, so there is no timing simulation.
        print("virtual time: unavailable (degraded run)")
    else:
        print(f"virtual time: native {seconds(timing.native_cycles):.2f}s, "
              f"superpin {seconds(timing.total_cycles):.2f}s "
              f"(slowdown {timing.slowdown:.2f}x)")
        breakdown = timing.breakdown()
        print("breakdown: " + ", ".join(
            f"{name} {seconds(value):.2f}s"
            for name, value in breakdown.items()))
    wall = report.wallclock_summary()
    print(f"measured: signatures {wall['signature_phase_seconds']:.3f}s, "
          f"slice phase {wall['slice_phase_seconds']:.3f}s "
          f"(run {wall['slice_run_seconds']:.3f}s, "
          f"pickle {wall['slice_pickle_seconds']:.3f}s, "
          f"parallelism {wall['measured_parallelism']:.2f}x)")
    if config.sptrace:
        from .obs import write_trace
        kind = write_trace(config.sptrace, report.trace, report.metrics)
        what = ("JSONL event log" if kind == "jsonl"
                else "Chrome trace (load in ui.perfetto.dev)")
        print(f"trace: wrote {what} to {config.sptrace}")
    if config.spmetrics or config.sptrace:
        print(report.trace_summary())
    if args.gantt and timing is not None:
        from .harness.report import gantt_chart
        print()
        print(gantt_chart(timing))
    if report.audit is not None:
        print(report.audit.summary())
        for divergence in report.audit.divergences[:10]:
            print(f"  {divergence}")
        if len(report.audit.divergences) > 10:
            print(f"  ... and {len(report.audit.divergences) - 10} more")
        if not report.audit.ok:
            # Distinct from argparse's 2: the run completed but failed
            # its audit.
            return 3
    return 0


def _cmd_replay(args, extra: list[str]) -> int:
    from .errors import RecordingCorruptError
    from .superpin import replay_recording

    names = [name.strip() for name in args.tools.split(",") if name.strip()]
    unknown = [name for name in names if name not in TOOLS]
    if not names or unknown:
        print(f"unknown tools: {', '.join(unknown) or '<none given>'}; "
              f"see 'superpin list'", file=sys.stderr)
        return 2
    switches = [s for s in extra if s != "--"]
    config = parse_switches(switches) if switches else SuperPinConfig()
    tools = [TOOLS[name]() for name in names]
    try:
        reports = replay_recording(args.recording, tools, config)
    except RecordingCorruptError as error:
        print(f"recording rejected: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot read recording: {error}", file=sys.stderr)
        return 2
    status = 0
    for name, tool, report in zip(names, tools, reports):
        print(f"replay {name}: {report.num_slices} slices from "
              f"{args.recording} (id {report.recording_id[:12]})")
        if report.degraded_slices:
            print("  degraded slices: "
                  + ",".join(map(str, report.degraded_slices)))
        print(f"  tool report: {tool.report()}")
        if report.audit is not None:
            print(f"  {report.audit.summary()}")
            for divergence in report.audit.divergences[:10]:
                print(f"    {divergence}")
            if not report.audit.ok:
                status = 3
    return status


def _cmd_debug(args, extra: list[str]) -> int:
    from .errors import (DivergenceError, RecordingCorruptError,
                         TimeTravelError)
    from .superpin import load_recording, parse_switches, SuperPinConfig
    from .superpin.timetravel import DebugSession

    switches = [s for s in extra if s != "--"]
    config = parse_switches(switches) if switches else SuperPinConfig()
    try:
        recording = load_recording(
            args.recording,
            tolerate_damaged=config.spfaults == "degrade")
    except RecordingCorruptError as error:
        print(f"recording rejected: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot read recording: {error}", file=sys.stderr)
        return 2
    session = DebugSession(recording, config)

    if args.script:
        try:
            with open(args.script, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError as error:
            print(f"cannot read script: {error}", file=sys.stderr)
            return 2
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            print(f"(ttd) {line}")
            try:
                output = session.execute(line)
            except TimeTravelError as error:
                print(f"error: {error}")
                return 2
            except DivergenceError as error:
                print(f"divergence: {error}")
                return 3
            if output is None:
                break
            for text in output:
                print(text)
        return 0

    print(f"debug {args.recording}: {recording.num_slices} slices, "
          f"{recording.total_instructions} instructions "
          f"(id {recording.recording_id[:12]})")
    print("type 'help' for commands, 'quit' to leave")
    while True:
        try:
            line = input("(ttd) ")
        except EOFError:
            print()
            return 0
        try:
            output = session.execute(line)
        except TimeTravelError as error:
            print(f"error: {error}")
            continue
        except DivergenceError as error:
            print(f"divergence: {error}")
            continue
        if output is None:
            return 0
        for text in output:
            print(text)


def _cmd_serve(args) -> int:
    from .serve import ServeDaemon
    if args.workers < 0 or args.queue_depth <= 0:
        print("serve: --workers must be >= 0 and --queue-depth > 0",
              file=sys.stderr)
        return 2
    daemon = ServeDaemon(args.socket, args.state, workers=args.workers,
                         max_depth=args.queue_depth)
    print(f"serve: listening on {args.socket} "
          f"({args.workers} workers, queue depth {args.queue_depth}, "
          f"state {args.state})", flush=True)
    daemon.run()
    print("serve: stopped")
    return 0


def _cmd_submit(args, extra: list[str]) -> int:
    from .serve import ServeClient, ServeError
    if (args.workload is None) == (args.asm is None):
        print("submit: exactly one of -w/--workload or --asm",
              file=sys.stderr)
        return 2
    spec: dict = {"tool": args.tool, "seed": args.seed,
                  "switches": [s for s in extra if s != "--"]}
    if args.workload is not None:
        spec["workload"] = args.workload
        spec["scale"] = args.scale
    else:
        with open(args.asm, "r", encoding="utf-8") as handle:
            spec["asm"] = handle.read()
    client = ServeClient(args.socket)

    def on_event(event: dict) -> None:
        kind = event.get("event")
        if kind == "state":
            print(f"  {event['job_id']}: {event['state']}")
        elif kind == "progress" and event.get("kind") == "slice":
            payload = event.get("payload", {})
            print(f"  {event['job_id']}: slice "
                  f"{payload.get('completed')}/{payload.get('total')}")

    try:
        response = client.submit(spec, tenant=args.tenant,
                                 stream=not args.no_stream,
                                 on_event=on_event)
    except ServeError as error:
        print(f"submit rejected ({error.code}): {error}",
              file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot reach daemon: {error}", file=sys.stderr)
        return 2
    job_id = response["job_id"]
    if args.no_stream:
        print(f"queued {job_id}")
        return 0
    final = response["final"]
    if final["event"] == "failed":
        print(f"{job_id} failed: {final.get('error')}", file=sys.stderr)
        return 1
    result = final["result"]
    hits = result["counters"].get("pin.cache.persistent_hits", 0)
    print(f"{job_id} done: exit {result['exit_code']}, "
          f"{result['num_slices']} slices, "
          f"persistent hits {hits}, "
          f"pilot cold compiles {result['pilot_cold_compiles']}")
    print(f"tool report: {result['tool_report']}")
    return 0


def _cmd_status(args) -> int:
    from .serve import ServeClient, ServeError
    client = ServeClient(args.socket)
    try:
        if args.shutdown:
            client.shutdown()
            print("daemon stopping")
            return 0
        if args.cancel is not None:
            response = client.cancel(args.cancel)
            print(f"{args.cancel}: {response.get('state')}")
            return 0
        if args.job is not None:
            job = client.status(args.job)["job"]
            print(f"{job['job_id']} [{job['tenant']}] {job['state']} "
                  f"tool={job['tool']} program={job['program']}")
            if job.get("error"):
                print(f"  error: {job['error']}")
            return 0
        snapshot = client.status()
        daemon = snapshot["daemon"]
        print(f"daemon: {daemon['running']} running, "
              f"{daemon['queue_depth']}/{daemon['max_depth']} queued, "
              f"{daemon['workers']} workers")
        for tenant, depth in sorted(daemon["queue_depths"].items()):
            print(f"  queue[{tenant}]: {depth}")
        for job in snapshot["jobs"]:
            print(f"  {job['job_id']} [{job['tenant']}] {job['state']} "
                  f"{job['program']}/{job['tool']}")
        return 0
    except ServeError as error:
        print(f"daemon error ({error.code}): {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"cannot reach daemon: {error}", file=sys.stderr)
        return 2


def _cmd_figure(args) -> int:
    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    names = sorted(FIGURES) if args.which == "all" else [args.which]
    for name in names:
        fn = FIGURES[name]
        if name in ("3", "4", "5"):
            data = fn(scale=args.scale, benchmarks=benchmarks)
        elif name == "sigstats":
            data = fn(scale=min(args.scale, 0.5), benchmarks=benchmarks)
        else:
            data = fn(scale=args.scale)
        print(render_figure(data))
        print()
    return 0


def _cmd_list() -> int:
    print("workloads (synthetic SPEC2000 suite):")
    for name in BENCHMARK_NAMES:
        print(f"  {name}")
    print("tools:")
    for name in sorted(TOOLS):
        print(f"  {name}")
    return 0


def _load_any(path: str):
    """Load a program from assembly source or a binary object file."""
    from .isa import assemble, objfile
    with open(path, "rb") as handle:
        data = handle.read()
    if objfile.is_object_file(data):
        return objfile.loads(data, name=path)
    return assemble(data.decode("utf-8"), name=path)


def _cmd_asm(args) -> int:
    from .isa import objfile
    program = _load_any(args.file)
    if args.output:
        objfile.save(program, args.output)
        print(f"wrote {args.output} ({program.word_count()} words, "
              f"entry {program.entry:#x})")
        return 0
    kernel = Kernel(seed=42)
    if args.tool:
        tool = TOOLS[args.tool]()
        result, vm, kernel = run_with_pin(program, tool, kernel)
        print(f"exit code: {result.exit_code}")
        print(f"instructions: {result.instructions}")
        print(f"tool report: {tool.report()}")
    else:
        process = load_program(program, kernel)
        interp = Interpreter(process)
        interp.run(max_instructions=500_000_000)
        print(f"exit code: {process.exit_code}")
        print(f"instructions: {interp.total_instructions}")
    stdout = kernel.stdout_text()
    if stdout:
        print(f"stdout: {stdout!r}")
    return 0


def _cmd_objdump(args) -> int:
    from .isa import disassemble_range
    program = _load_any(args.file)
    print(f"{args.file}: entry {program.entry:#x}, "
          f"{len(program.segments)} segments, "
          f"{len(program.symbols)} symbols")
    for segment in program.segments:
        print(f"\nsegment {segment.name or '<anon>'} at "
              f"{segment.base:#x} ({len(segment.words)} words)")
        if segment.name == ".text":
            print(disassemble_range(list(segment.words), segment.base,
                                    program.symbols))
    return 0


if __name__ == "__main__":
    sys.exit(main())
