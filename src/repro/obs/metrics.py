"""Named counters, gauges and histograms with cross-process merge.

A :class:`MetricsRegistry` is a flat namespace of metrics identified by
dotted names ("pin.cache.compiles", "superpin.supervisor.retries").
Three kinds exist:

* **counters** — monotonically increasing totals (:meth:`~MetricsRegistry.inc`);
* **gauges** — last-written values (:meth:`~MetricsRegistry.set_gauge`);
* **histograms** — streaming summaries (count/total/min/max) of observed
  values (:meth:`~MetricsRegistry.observe`).

Worker processes each build their own registry, return
:meth:`~MetricsRegistry.snapshot` (a plain picklable dict) with their
result blob, and the parent folds every snapshot into the run's registry
with :meth:`~MetricsRegistry.merge`: counters and histogram summaries
add, gauges keep the last merged value.  Merging is associative and
commutative for counters and histograms, so worker completion order
cannot change the totals.

When metrics are disabled (the default) the call sites hold
:data:`NULL_METRICS`, whose methods are allocation-free no-ops — the
hot path pays one attribute lookup and a no-op call.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class HistogramSummary:
    """Streaming summary of observed values (no stored samples)."""

    count: int = 0
    total: float = 0.0
    min: float = 0.0
    max: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.min = self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max}

    def merge_dict(self, other: dict) -> None:
        count = int(other.get("count", 0))
        if count == 0:
            return
        if self.count == 0:
            self.min = float(other["min"])
            self.max = float(other["max"])
        else:
            self.min = min(self.min, float(other["min"]))
            self.max = max(self.max, float(other["max"]))
        self.count += count
        self.total += float(other.get("total", 0.0))


class MetricsRegistry:
    """A run's metrics: counters, gauges and histogram summaries."""

    enabled = True

    def __init__(self):
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramSummary] = {}

    # -- recording --------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    # -- reading ----------------------------------------------------------

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self.histograms.get(name)

    # -- cross-process transport ------------------------------------------

    def snapshot(self) -> dict:
        """Picklable plain-dict image of the registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: hist.as_dict()
                           for name, hist in self.histograms.items()},
        }

    def merge(self, snapshot: dict | None) -> None:
        """Fold a worker's :meth:`snapshot` into this registry."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = HistogramSummary()
            hist.merge_dict(data)


class NullMetrics:
    """No-op registry: recording costs one lookup and a no-op call."""

    enabled = False
    #: Shared immutable class attributes; reads allocate nothing.
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, HistogramSummary] = {}

    def inc(self, name, value=1):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def counter(self, name):
        return 0

    def gauge(self, name):
        return 0.0

    def histogram(self, name):
        return None

    def snapshot(self):
        return None

    def merge(self, snapshot):
        pass


NULL_METRICS = NullMetrics()


def metrics_for(enabled: bool) -> MetricsRegistry | NullMetrics:
    """A fresh registry when ``enabled``, else the shared null one."""
    return MetricsRegistry() if enabled else NULL_METRICS
