"""Code-cache pressure: correctness must survive flushes."""

import pytest

from repro.machine import Kernel, load_program
from repro.pin import CodeCache, PinVM, RunState
from repro.pin.pintool import NullSuperPin
from repro.tools import ICount2
from tests.conftest import run_native


@pytest.mark.parametrize("bubble_words", [200, 1000, 10_000])
@pytest.mark.parametrize("backend", ["closure", "source"])
def test_flushes_preserve_exact_counts(bubble_words, backend,
                                       multislice_program):
    """A bubble too small for the working set forces repeated flushes
    and recompiles; results must not change."""
    _, interp, _ = run_native(multislice_program)
    cache = CodeCache(bubble_base=0, bubble_words=bubble_words)
    process = load_program(multislice_program, Kernel(seed=42))
    vm = PinVM(process, code_cache=cache, jit_backend=backend)
    tool = ICount2()
    tool.setup(NullSuperPin())
    tool.activate(vm)
    result = vm.run()
    tool.fini()
    assert result.state is RunState.EXIT
    assert tool.total == interp.total_instructions
    if bubble_words <= 200:
        assert cache.stats.flushes > 0  # pressure actually happened


def test_tiny_trace_cap_still_correct(multislice_program):
    """max_trace_ins=1: every instruction is its own trace."""
    _, interp, _ = run_native(multislice_program)
    process = load_program(multislice_program, Kernel(seed=42))
    vm = PinVM(process, max_trace_ins=1)
    tool = ICount2()
    tool.setup(NullSuperPin())
    tool.activate(vm)
    vm.run()
    tool.fini()
    assert tool.total == interp.total_instructions
