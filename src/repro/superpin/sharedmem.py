"""Shared areas: cross-slice result memory (paper §4.5 / §5).

``SP_CreateSharedArea(localData, size, autoMerge)`` allocates a region
visible to every slice and to the final ``fini``.  Two usage styles, both
from the paper:

* **Manual merge** (Figure 2): the tool keeps slice-local state and a
  registered slice-end function adds it into the shared area.  The area
  object is *never* copied into slices — ``__deepcopy__`` returns
  ``self`` — so writes from any slice context land in the one true
  region, mirroring fork + shared memory.

* **Auto merge**: the tool hands over its local data object and an
  :class:`AutoMerge` mode; the runtime merges the slice's copy of the
  local data into the area at slice end, in slice order, with no tool
  code.

Word values are plain Python ints; ``size`` is kept for API fidelity and
bounds checking.
"""

from __future__ import annotations

import enum

from ..errors import InstrumentationError


class AutoMerge(enum.Enum):
    """How a shared area absorbs a slice's local data at slice end."""

    NONE = 0
    ADD = 1
    MAX = 2
    MIN = 3
    CONCAT = 4


#: While set, :func:`_restore_shared_area` resolves unpickled areas to
#: these canonical instances (keyed by name) instead of building copies.
_RESOLVE_AREAS: dict[str, "SharedArea"] | None = None


class resolve_shared_areas:
    """Context manager: unpickling inside resolves areas to canonical ones.

    The parallel slice executor pickles tool contexts into worker
    processes and pickles the results back.  Inside a worker, unpickling
    a :class:`SharedArea` builds a private copy (slice-local writes to it
    are discarded, exactly like a worker's address space).  In the
    *parent*, however, the returned context's area references must
    resolve back to the one true region so slice-end merge functions
    write where ``fini`` will read — the pickling analogue of
    ``__deepcopy__`` returning ``self``.  Wrap the result unpickle in
    this manager, passing the run's canonical areas.
    """

    def __init__(self, areas: "list[SharedArea]"):
        self._areas = {area.name: area for area in areas}
        self._previous: dict[str, SharedArea] | None = None

    def __enter__(self) -> "resolve_shared_areas":
        global _RESOLVE_AREAS
        self._previous = _RESOLVE_AREAS
        _RESOLVE_AREAS = self._areas
        return self

    def __exit__(self, *exc) -> None:
        global _RESOLVE_AREAS
        _RESOLVE_AREAS = self._previous


def _restore_shared_area(name: str, size: int, mode_value: int,
                         data: list) -> "SharedArea":
    """Pickle reconstructor for :class:`SharedArea` (see ``__reduce__``)."""
    registry = _RESOLVE_AREAS
    if registry is not None and name in registry:
        return registry[name]
    area = SharedArea(name, size, AutoMerge(mode_value))
    area.data = list(data)
    return area


class SharedArea:
    """A named region shared by the master and every slice."""

    def __init__(self, name: str, size: int,
                 auto_merge: AutoMerge = AutoMerge.NONE):
        if size < 0:
            raise InstrumentationError(f"shared area size {size} < 0")
        self.name = name
        self.size = size
        self.auto_merge = auto_merge
        self.data: list = [0] * size

    # Shared across slices: deep copies hand back the same object,
    # the in-simulation analogue of a shared-memory mapping surviving fork.
    def __deepcopy__(self, memo) -> "SharedArea":
        memo[id(self)] = self
        return self

    def __copy__(self) -> "SharedArea":
        return self

    # Pickling (crossing a worker-process boundary) goes through the
    # reconstructor so references resolve to the canonical area wherever
    # a resolve_shared_areas scope is active.  Within one pickle the
    # memo still guarantees a single object per area.
    def __reduce__(self):
        return (_restore_shared_area,
                (self.name, self.size, self.auto_merge.value,
                 list(self.data)))

    # -- word access ---------------------------------------------------------

    def __getitem__(self, index: int):
        return self.data[index]

    def __setitem__(self, index: int, value) -> None:
        self.data[index] = value

    def __len__(self) -> int:
        return len(self.data)

    @property
    def value(self):
        """Convenience for one-word areas (the icount pattern)."""
        return self.data[0]

    @value.setter
    def value(self, new) -> None:
        self.data[0] = new

    # -- merging -------------------------------------------------------------

    def merge_from(self, local) -> None:
        """Apply this area's auto-merge mode to a slice's local data.

        ``local`` is the slice's copy of the object the tool registered
        at creation time (a list-like of words, or any iterable for
        CONCAT).
        """
        mode = self.auto_merge
        if mode is AutoMerge.NONE:
            return
        if mode is AutoMerge.CONCAT:
            self.data.extend(local)
            return
        values = list(local)
        if len(values) > len(self.data):
            raise InstrumentationError(
                f"auto-merge source for {self.name!r} has {len(values)} "
                f"words but the area holds {len(self.data)}")
        if mode is AutoMerge.ADD:
            for i, value in enumerate(values):
                self.data[i] += value
        elif mode is AutoMerge.MAX:
            for i, value in enumerate(values):
                if value > self.data[i]:
                    self.data[i] = value
        elif mode is AutoMerge.MIN:
            for i, value in enumerate(values):
                if value < self.data[i]:
                    self.data[i] = value
        else:  # pragma: no cover
            raise InstrumentationError(f"unhandled merge mode {mode}")

    def __repr__(self) -> str:
        return (f"SharedArea({self.name!r}, size={self.size}, "
                f"mode={self.auto_merge.name})")
