"""Toy 64-bit word-addressed RISC ISA.

This package is the "hardware manual" of the reproduction: instruction set
and binary encoding (:mod:`~repro.isa.instructions`,
:mod:`~repro.isa.encoding`), register conventions
(:mod:`~repro.isa.registers`), platform ABI (:mod:`~repro.isa.abi`), and the
assembler/disassembler/program-image toolchain.
"""

from . import abi
from .assembler import Assembler, assemble
from .disassembler import disassemble_range, disassemble_word
from .encoding import decode, encode, IMM_MAX, IMM_MIN
from . import objfile
from .instructions import (Format, INFO, MASK64, MNEMONICS, Op, OpInfo,
                           to_signed, to_unsigned, WRITES_RD)
from .program import Program, Segment
from .registers import (ALIASES, NUM_REGS, parse_register, register_name,
                        A0, A1, A2, A3, A4, A5, FP, GP, RA, RV, SP, ZERO)

__all__ = [
    "abi", "objfile", "Assembler", "assemble", "disassemble_range",
    "disassemble_word",
    "decode", "encode", "IMM_MAX", "IMM_MIN", "Format", "INFO", "MASK64",
    "MNEMONICS", "Op", "OpInfo", "to_signed", "to_unsigned", "WRITES_RD",
    "Program", "Segment", "ALIASES", "NUM_REGS", "parse_register",
    "register_name", "A0", "A1", "A2", "A3", "A4", "A5", "FP", "GP", "RA",
    "RV", "SP", "ZERO",
]
