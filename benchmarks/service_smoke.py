"""Service smoke test: boot the daemon, prove the cross-run warm start.

The CI `service-smoke` job's driver (also runnable locally):

    python benchmarks/service_smoke.py --artifacts service-smoke

Boots `superpin serve` as a subprocess, submits three concurrent jobs
through the client — two identical gzip runs plus one distinct mcf
run — and asserts:

- all three complete with correct, matching reports;
- the second identical job hits the persistent trace store
  (``pin.cache.persistent_hits > 0``) and compiles zero pilot-slice
  traces cold;
- the distinct job keys its own entry (cold, no false sharing).

On success the daemon is shut down gracefully and its state dir (job
log, metrics/trace-store exports) is copied to ``--artifacts`` for
upload.
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve import ServeClient  # noqa: E402

IDENTICAL = {"workload": "gzip", "scale": 0.15, "tool": "icount2",
             "seed": 42, "switches": ["-spworkers", "2"]}
DISTINCT = {"workload": "mcf", "scale": 0.15, "tool": "icount1",
            "seed": 42, "switches": ["-spworkers", "2"]}


def boot_daemon(socket_path, state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", socket_path, "--state", state_dir,
         "--workers", "1"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    client = ServeClient(socket_path, timeout=600.0)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit("daemon died at startup:\n"
                             + proc.communicate()[0].decode())
        try:
            if os.path.exists(socket_path) and client.ping():
                return proc, client
        except OSError:
            pass
        time.sleep(0.1)
    raise SystemExit("daemon never became reachable")


def hits(final):
    return final["result"]["counters"].get("pin.cache.persistent_hits", 0)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifacts", default=None,
                        help="copy the daemon state dir here on success")
    args = parser.parse_args(argv)

    root = tempfile.mkdtemp(dir="/tmp", prefix="spsmoke-")
    socket_path = os.path.join(root, "d.sock")
    state_dir = os.path.join(root, "state")
    proc, client = boot_daemon(socket_path, state_dir)
    try:
        # Enqueue all three before anything finishes: one worker drains
        # them j1 -> j3 -> j2 (round-robin across the two tenants), so
        # the second identical job always runs after the first has
        # populated the store.
        j1 = client.submit(IDENTICAL, tenant="alice",
                           stream=False)["job_id"]
        j2 = client.submit(IDENTICAL, tenant="alice",
                           stream=False)["job_id"]
        j3 = client.submit(DISTINCT, tenant="bob",
                           stream=False)["job_id"]
        print(f"queued {j1} {j2} (identical) + {j3} (distinct)")
        finals = {job_id: client.wait(job_id) for job_id in (j1, j2, j3)}
        for job_id, final in finals.items():
            if final["event"] != "done":
                raise SystemExit(f"{job_id} failed: {final}")
            result = final["result"]
            print(f"{job_id}: exit {result['exit_code']}, "
                  f"{result['num_slices']} slices, persistent hits "
                  f"{hits(final)}, pilot cold "
                  f"{result['pilot_cold_compiles']}")

        problems = []
        if hits(finals[j1]) != 0:
            problems.append(f"{j1} (first) unexpectedly hit the store")
        if hits(finals[j2]) <= 0:
            problems.append(f"{j2} (identical resubmission) missed the "
                            f"persistent trace store")
        if finals[j2]["result"]["pilot_cold_compiles"] != 0:
            problems.append(
                f"{j2} compiled "
                f"{finals[j2]['result']['pilot_cold_compiles']} pilot "
                f"traces cold; a store hit must warm the pilot")
        if (finals[j1]["result"]["tool_report"]
                != finals[j2]["result"]["tool_report"]):
            problems.append("identical jobs produced different reports")
        if hits(finals[j3]) != 0:
            problems.append(f"{j3} (distinct program) hit another "
                            f"program's entry")
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1

        client.shutdown()
        proc.wait(timeout=60)
        if args.artifacts:
            shutil.copytree(state_dir, args.artifacts,
                            dirs_exist_ok=True)
            print(f"copied daemon state to {args.artifacts}")
        print("service smoke passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
