"""``python -m repro`` — the ``superpin`` CLI without an install."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
