"""Write-ahead run journal and result-blob framing.

Two durability mechanisms share this module because they share a wire
discipline — every byte sequence that crosses a trust boundary (a
process boundary, a crash boundary) carries a length prefix and a
SHA-256 checksum, so a short read or a bit flip surfaces as a
structured error instead of a raw ``UnpicklingError``:

* **Framing** (:func:`frame_blob` / :func:`unframe_blob`) wraps every
  pickled slice-result blob returned by a worker process.  A damaged
  frame raises :class:`~repro.superpin.faults.CorruptResultFault`,
  which the supervisor's retry ladder already knows how to handle.

* The **run journal** (:class:`RunJournal`) makes in-flight runs
  crash-safe: as each slice completes, its (framed) result blob is
  appended to the journal and fsync'd, so a run killed at any instant
  leaves a journal whose valid prefix holds every slice that finished.
  ``-spresume`` then re-executes only the missing slices
  (:meth:`RunJournal.resume`), adopting the journaled results with
  byte-identical merged output.

Journal file layout (little-endian)::

    b"SPJL1\\n"  + run_key (64 ascii hex bytes) + b"\\n"     # header
    [ b"JE01" + u32 slice_index + u64 length + sha256 + blob ]*

The per-entry sha256 covers the entry header fields *and* the blob, so
a bit flip anywhere in an entry — including its slice index — ends the
valid prefix rather than relabeling or damaging an adopted result.

The header is written atomically (tmp + rename, fsync'd); entries are
append-only, each flushed and fsync'd before the append returns — the
write-ahead contract.  A torn tail (the crash hit mid-append) is
*tolerated*: the valid prefix is adopted and the file is truncated back
to it on resume.  A header that belongs to a different run — different
program, tool or result-affecting configuration — is a ``stale``
:class:`~repro.errors.RecordingCorruptError`: adopting another run's
slices would merge silently-wrong results.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct

from ..errors import RecordingCorruptError
from ..fsutil import atomic_write, fsync_directory
from ..obs.metrics import NULL_METRICS

#: Frame magic for worker result blobs ("SuperPin Framed Blob").
FRAME_MAGIC = b"SPFB"
_FRAME_HEADER = struct.Struct("<4sQ32s")

#: Journal file magic (format revision 1) and per-entry magic.
JOURNAL_MAGIC = b"SPJL1\n"
ENTRY_MAGIC = b"JE01"
_ENTRY_HEADER = struct.Struct("<4sIQ32s")

#: Length of the hex run key stored in the journal header.
_KEY_LEN = 64


def _entry_digest(slice_index: int, blob: bytes) -> bytes:
    """Entry checksum.  Covers the header fields *and* the blob: a bit
    flip in the slice index must fail verification, not silently
    relabel one slice's result as another's."""
    return hashlib.sha256(
        ENTRY_MAGIC + slice_index.to_bytes(4, "little")
        + len(blob).to_bytes(8, "little") + blob).digest()


# -- result-blob framing ------------------------------------------------------

def frame_blob(data: bytes) -> bytes:
    """Wrap ``data`` in a length-prefixed, checksummed frame."""
    return (_FRAME_HEADER.pack(FRAME_MAGIC, len(data),
                               hashlib.sha256(data).digest())
            + data)


def unframe_blob(blob: bytes) -> bytes:
    """Verify and strip a :func:`frame_blob` frame.

    Raises :class:`~repro.superpin.faults.CorruptResultFault` on any
    damage — missing magic, short read, length mismatch, checksum
    mismatch — so the supervisor's existing corrupt-result handling
    (retry, then degrade) applies uniformly.
    """
    from .faults import CorruptResultFault
    if len(blob) < _FRAME_HEADER.size:
        raise CorruptResultFault(
            f"result blob shorter than its frame header "
            f"({len(blob)} bytes)")
    magic, length, digest = _FRAME_HEADER.unpack_from(blob)
    if magic != FRAME_MAGIC:
        raise CorruptResultFault(
            f"result blob has bad frame magic {magic!r}")
    data = blob[_FRAME_HEADER.size:]
    if len(data) != length:
        raise CorruptResultFault(
            f"result blob truncated: frame declares {length} bytes, "
            f"{len(data)} present")
    if hashlib.sha256(data).digest() != digest:
        raise CorruptResultFault(
            "result blob failed its frame checksum (bit flip in "
            "transit)")
    return data


# -- run identity -------------------------------------------------------------

#: Config fields that affect slice *results*.  Fields that only change
#: how the run executes (worker count, fault policy, observability,
#: journal/recording paths) are deliberately excluded so a resumed or
#: replayed run may use a different execution strategy and still adopt
#: the journaled results — the spworkers parity property guarantees
#: they are identical.
_KEY_FIELDS = (
    "spmsec", "spmp", "spsysrecs", "clock_hz", "jit_backend",
    "splinktraces", "spwarmcache", "spsharedcache", "spfilter",
    "spsuppress", "spsample", "spadaptive", "expected_duration_msec",
    "min_timeslice_msec", "signature_stack_words", "quickreg_block_count",
    "quickreg_adaptive", "slice_runaway_factor", "slice_runaway_slack",
)


def run_key(source_digest: str, tool_name: str, config) -> str:
    """Identity of one run's *results*: program/artifact + tool + config.

    ``source_digest`` identifies what is being executed — a program
    pickle digest for live runs, a recording id for replays.  Two runs
    with the same key produce byte-identical slice results, which is
    the precondition for adopting each other's journal entries.
    """
    fields = tuple(getattr(config, name, None) for name in _KEY_FIELDS)
    token = repr((source_digest, tool_name, fields)).encode()
    return hashlib.sha256(token).hexdigest()


def program_digest(program) -> str:
    """Stable digest of a program image (for :func:`run_key`)."""
    return hashlib.sha256(
        pickle.dumps(program, pickle.HIGHEST_PROTOCOL)).hexdigest()


# -- the journal --------------------------------------------------------------

class RunJournal:
    """Append-only write-ahead journal of completed slice results."""

    def __init__(self, path, key: str, metrics=NULL_METRICS):
        self.path = os.fspath(path)
        self.key = key
        self.metrics = metrics
        self._handle = None

    # -- creation / resume -------------------------------------------------

    @classmethod
    def create(cls, path, key: str, metrics=NULL_METRICS) -> "RunJournal":
        """Start a fresh journal, atomically replacing any previous one."""
        journal = cls(path, key, metrics=metrics)
        atomic_write(journal.path,
                     JOURNAL_MAGIC + key.encode("ascii") + b"\n")
        fsync_directory(journal.path)
        journal._handle = open(journal.path, "ab")
        return journal

    @classmethod
    def resume(cls, path, key: str, metrics=NULL_METRICS
               ) -> tuple["RunJournal", dict[int, bytes]]:
        """Open an existing journal and adopt its valid entry prefix.

        Returns ``(journal, entries)`` where ``entries`` maps slice
        index to the journaled (framed) result blob.  A missing journal
        starts fresh with no entries.  A torn tail is truncated away;
        a wrong run key raises a ``stale``
        :class:`~repro.errors.RecordingCorruptError`.
        """
        path = os.fspath(path)
        if not os.path.exists(path):
            return cls.create(path, key, metrics=metrics), {}
        with open(path, "rb") as handle:
            data = handle.read()
        entries, valid_end = _scan(data, key, path)
        if valid_end < len(data):
            # Torn tail: keep the durable prefix, drop the partial
            # entry the crash interrupted (its slice simply re-runs).
            atomic_write(path, data[:valid_end])
        journal = cls(path, key, metrics=metrics)
        journal._handle = open(path, "ab")
        return journal, entries

    # -- the write-ahead contract ------------------------------------------

    def append(self, slice_index: int, blob: bytes) -> None:
        """Durably record one completed slice's result blob.

        The entry is flushed and fsync'd before this returns: once a
        slice is reported successful, a crash cannot lose it.
        """
        if self._handle is None:
            raise RecordingCorruptError(
                "journal is closed", kind="stale",
                section=f"entry_{slice_index}")
        entry = _ENTRY_HEADER.pack(ENTRY_MAGIC, slice_index, len(blob),
                                   _entry_digest(slice_index, blob)) + blob
        self._handle.write(entry)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.metrics.inc("superpin.journal.appends")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _scan(data: bytes, key: str, path: str
          ) -> tuple[dict[int, bytes], int]:
    """Validate a journal image; return (entries, end of valid prefix).

    Header damage is fatal (the whole file is untrustworthy); entry
    damage ends the valid prefix — everything before it is adopted,
    everything after is discarded (write-ahead means a torn tail can
    only be the *last* append).
    """
    header_len = len(JOURNAL_MAGIC) + _KEY_LEN + 1
    if len(data) < header_len:
        raise RecordingCorruptError(
            f"journal {path} shorter than its header", kind="truncated",
            section="header")
    if not data.startswith(JOURNAL_MAGIC):
        if data[:4] == JOURNAL_MAGIC[:4]:
            raise RecordingCorruptError(
                f"journal {path} written by an incompatible format "
                f"revision", kind="version", section="header")
        raise RecordingCorruptError(
            f"journal {path} has bad magic", kind="magic",
            section="header")
    stored = data[len(JOURNAL_MAGIC):len(JOURNAL_MAGIC) + _KEY_LEN]
    if stored != key.encode("ascii"):
        raise RecordingCorruptError(
            f"journal {path} belongs to a different run (key "
            f"{stored[:12]!r}... != {key[:12]!r}...): refusing to adopt "
            f"another run's slice results", kind="stale",
            section="header")
    entries: dict[int, bytes] = {}
    pos = header_len
    while pos < len(data):
        start = pos
        if pos + _ENTRY_HEADER.size > len(data):
            return entries, start
        magic, index, length, digest = _ENTRY_HEADER.unpack_from(data, pos)
        pos += _ENTRY_HEADER.size
        if magic != ENTRY_MAGIC or pos + length > len(data):
            return entries, start
        blob = data[pos:pos + length]
        pos += length
        if _entry_digest(index, blob) != digest:
            return entries, start
        entries[index] = blob
    return entries, pos


def damage_journal(path, kind: str) -> None:
    """Deterministically damage a journal (the ``-spinject`` hook).

    ``truncate`` chops into the last entry (a torn tail — resume must
    re-execute that slice); ``stale`` ages the header's run key so
    resume must reject the file outright.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if kind == "truncate":
        cut = max(len(JOURNAL_MAGIC) + _KEY_LEN + 1, len(data) - 7)
        atomic_write(path, data[:cut])
    elif kind == "stale":
        start = len(JOURNAL_MAGIC)
        aged = (data[:start] + b"0" * _KEY_LEN
                + data[start + _KEY_LEN:])
        atomic_write(path, aged)
    else:
        raise ValueError(f"unknown journal damage kind {kind!r}")
