"""Slice execution details, the SP API handle, and merge ordering."""

import pytest

from repro.errors import InstrumentationError, RunawaySliceError
from repro.isa import abi, assemble
from repro.machine import Kernel
from repro.pin import Pintool
from repro.superpin import (AutoMerge, run_superpin, SPControl,
                            SuperPinConfig)
from repro.tools import ICount2


class MergeOrderTool(Pintool):
    """Records the order in which slice-end functions fire."""

    name = "mergeorder"

    def __init__(self):
        self.order = None
        self.begin_order = None
        self.icount = 0

    def reset(self, slice_num):
        self.icount = 0

    def on_begin(self, slice_num, value):
        self.begin_order.data.append(slice_num)

    def on_end(self, slice_num, value):
        self.order.data.append(slice_num)

    def setup(self, sp):
        sp.SP_Init(self.reset)
        self.order = sp.SP_CreateSharedArea([], 0, 0)
        self.order.data = []
        self.begin_order = sp.SP_CreateSharedArea([], 0, 0)
        self.begin_order.data = []
        sp.SP_AddSliceBeginFunction(self.on_begin, None)
        sp.SP_AddSliceEndFunction(self.on_end, None)

    def instrument_trace(self, trace, vm):
        pass


class TestLifecycleOrdering:
    def test_merge_called_in_slice_order(self, multislice_program):
        # In-process only: slice-*begin* functions fire slice-side, and
        # slice-side writes to a non-auto-merged area never cross the
        # worker boundary (slice-*end* functions fire at merge in the
        # parent, so ``order`` would survive either way).
        tool = MergeOrderTool()
        report = run_superpin(multislice_program, tool,
                              SuperPinConfig(spmsec=500, clock_hz=10_000,
                                             spworkers=0,
                                             spfaults="failfast"),
                              kernel=Kernel(seed=42))
        expected = list(range(report.num_slices))
        assert tool.order.data == expected
        assert tool.begin_order.data == expected


class TestSPControl:
    def test_endslice_outside_slice_rejected(self):
        sp = SPControl(SuperPinConfig())
        with pytest.raises(InstrumentationError, match="inside"):
            sp.SP_EndSlice()

    def test_create_area_size_inference(self):
        sp = SPControl(SuperPinConfig())
        area = sp.SP_CreateSharedArea([1, 2, 3], 0, AutoMerge.ADD)
        assert area.size == 3

    def test_merge_mode_coercion(self):
        sp = SPControl(SuperPinConfig())
        assert sp.SP_CreateSharedArea([0], 1, 1).auto_merge \
            is AutoMerge.ADD
        assert sp.SP_CreateSharedArea([0], 1, None).auto_merge \
            is AutoMerge.NONE
        assert sp.SP_CreateSharedArea(
            [0], 1, AutoMerge.MAX).auto_merge is AutoMerge.MAX

    def test_automerge_needs_iterable_local(self):
        sp = SPControl(SuperPinConfig())
        with pytest.raises(InstrumentationError, match="iterable"):
            sp.SP_CreateSharedArea(42, 1, AutoMerge.ADD)

    def test_deepcopy_shares_handle(self):
        import copy
        sp = SPControl(SuperPinConfig())
        assert copy.deepcopy(sp) is sp


class TestToolIsolation:
    def test_slice_tool_state_does_not_leak_to_master(self,
                                                      multislice_program):
        tool = ICount2()
        run_superpin(multislice_program, tool,
                     SuperPinConfig(spmsec=500, clock_hz=10_000),
                     kernel=Kernel(seed=42))
        # Master tool's local count was never touched by slices; fini
        # with merges present leaves it at 0.
        assert tool.icount == 0
        assert tool.total > 0  # merged into the shared area instead


class TestRunaway:
    """A never-matching signature must fail loudly, never loop forever.

    Depending on what the slice meets first, that is either a
    DivergenceError (an un-recorded syscall) or a RunawaySliceError
    (instruction budget exhausted).  Both paths are covered.
    """

    @staticmethod
    def _sabotage(parallel_mod):
        from repro.superpin.signature import Signature
        original = parallel_mod.record_boundary_signature

        def sabotaged(boundary, config):
            signature = original(boundary, config)
            bad_regs = list(signature.regs)
            bad_regs[8] ^= 0xDEAD  # corrupt t0's recorded value
            return Signature(pc=signature.pc, regs=tuple(bad_regs),
                             stack_base=signature.stack_base,
                             stack=signature.stack,
                             quick_regs=signature.quick_regs)
        return original, sabotaged

    def test_divergence_on_unrecorded_syscall(self, multislice_program):
        from repro.errors import DivergenceError
        from repro.superpin import parallel as parallel_mod
        original, sabotaged = self._sabotage(parallel_mod)
        parallel_mod.record_boundary_signature = sabotaged
        try:
            with pytest.raises(DivergenceError):
                run_superpin(multislice_program, ICount2(),
                             SuperPinConfig(spmsec=500, clock_hz=10_000,
                                            spfaults="failfast"),
                             kernel=Kernel(seed=42))
        finally:
            parallel_mod.record_boundary_signature = original

    def test_runaway_on_syscall_free_program(self):
        source = """
.entry main
main:
    li   t0, 0
    li   t1, 50000
lp: addi t0, t0, 1
    blt  t0, t1, lp
    li   a0, SYS_EXIT
    li   a1, 0
    syscall
"""
        program = assemble(source)
        from repro.superpin import parallel as parallel_mod
        original, sabotaged = self._sabotage(parallel_mod)
        parallel_mod.record_boundary_signature = sabotaged
        try:
            with pytest.raises(RunawaySliceError):
                run_superpin(program, ICount2(),
                             SuperPinConfig(spmsec=1000, clock_hz=10_000,
                                            spfaults="failfast"),
                             kernel=Kernel(seed=42))
        finally:
            parallel_mod.record_boundary_signature = original


class TestBubble:
    def test_slice_cache_allocates_inside_bubble(self, multislice_program):
        report = run_superpin(multislice_program, ICount2(),
                              SuperPinConfig(spmsec=500, clock_hz=10_000),
                              kernel=Kernel(seed=42))
        for result in report.slices:
            assert 0 < result.cache_allocated_words < abi.BUBBLE_WORDS
