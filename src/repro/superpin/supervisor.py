"""Slice supervision: fault isolation for the parallel slice phase.

The paper's control process survives misbehaving slices — a slice that
never detects its ending signature is killed by the runaway guard
(§4.3/§4.4) and the run keeps going.  This module gives the
reproduction the same discipline at the host level.  Because
record/playback makes every slice deterministic and re-executable from
its fork snapshot (the property rr-style replay exploits), a slice
whose *execution* fails — worker crash, hang, corrupted result,
runaway — can simply be re-run, in another worker or in-process,
without affecting any other slice.

Supervision wraps :mod:`repro.superpin.parallel` with:

* a **wall-clock deadline** per slice, derived from its master
  instruction count plus a configurable floor
  (:func:`slice_deadline`); a worker still running past it is reaped
  (worker processes terminated, pool rebuilt, innocent in-flight
  slices resubmitted without touching their retry budget);
* **bounded retries with backoff**: a failed slice is re-executed in a
  fresh worker up to ``-spretries`` times, then once in-process (the
  sequential fallback), with exponential backoff between retries;
* **pool reconstruction**: a ``BrokenProcessPool`` (a worker died)
  rebuilds the pool and resubmits every in-flight slice instead of
  aborting the run;
* a **policy switch** (``-spfaults``): ``failfast`` aborts the run on
  the first failure, cancelling everything still queued; ``retry``
  exhausts the retry ladder then raises
  :class:`~repro.errors.SliceExecutionError`; ``degrade`` records the
  slice as a hole (:class:`SliceOutcome` with status ``degraded``),
  merges the survivors in slice order, and completes the run with
  ``all_exact == False``.

Every attempt is recorded as a :class:`SliceAttempt` on the slice's
:class:`SliceOutcome`, which lands on ``SuperPinReport.slice_outcomes``
— the structured answer to "what happened to slice k and why".

Retries are bit-exact: worker attempts re-materialize the slice from
its original pickled payload, and the in-process fallback runs the
*same* payload through the same worker entry point (pickle round trip
included), so a recovered slice's result — counters, cow faults,
compile log — is identical to a clean first-attempt run.  Sequential
supervision (``-spworkers 0`` with a non-failfast policy or a fault
plan) uses the identical payload path, which is what makes the
``spworkers in {0, N}`` parity properties hold under injected faults.

Deadlines are enforced by reaping *worker* attempts; an in-process
attempt cannot be preempted by a single-threaded parent, so only
injected hangs surface as :class:`~repro.errors.SliceDeadlineError`
there.
"""

from __future__ import annotations

import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import SliceExecutionError
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import ensure_tracer, TrackAllocator
from .api import SliceToolContext, SPControl
from .control import Interval, MasterTimeline
from .faults import (CORRUPT_BLOB, CorruptResultFault, FaultKind, FaultPlan,
                     maybe_inject, tamper_blob)
from .journal import unframe_blob
from .parallel import (SliceTimings, _slice_payload, _worker_run_slice,
                       execute_slices, slice_timings_from_records,
                       synthesize_slice_spans)
from .sharedmem import resolve_shared_areas
from .signature import Signature
from .slices import SliceResult
from .switches import SuperPinConfig


@dataclass
class SliceAttempt:
    """One execution attempt of one slice, successful or not."""

    #: Ordinal execution number for this slice (1-based).
    number: int
    #: Where the attempt ran: ``"worker"`` or ``"inprocess"``.
    where: str
    #: Host wall-clock seconds the attempt was in flight.
    seconds: float = 0.0
    #: ``None`` on success, else a one-line description of the failure.
    error: str | None = None
    #: False when the attempt ended through no fault of its own (the
    #: pool was torn down to reap a neighbour) and was resubmitted
    #: without touching the slice's retry budget.
    charged: bool = True

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SliceOutcome:
    """Structured per-slice supervision record (status + history)."""

    index: int
    #: ``"ok"`` (a result was produced) or ``"degraded"`` (policy
    #: ``degrade`` gave up on the slice and left a hole in the merge).
    status: str = "ok"
    attempts: list[SliceAttempt] = field(default_factory=list)
    #: Wall-clock deadline this slice's worker attempts ran under.
    deadline_seconds: float = 0.0
    #: Final error for a degraded slice (None when status is ``ok``).
    error: str | None = None

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def recovered(self) -> bool:
        """True when the slice succeeded only after a failed attempt."""
        return self.status == "ok" and any(not a.ok for a in self.attempts)


@dataclass
class SupervisedSlices:
    """What the supervised slice phase hands back to the runtime."""

    #: Surviving results in slice order (degraded slices are absent).
    results: list[SliceResult]
    timings: list[SliceTimings]
    outcomes: list[SliceOutcome]

    @property
    def degraded(self) -> list[int]:
        return [o.index for o in self.outcomes if o.status == "degraded"]


def slice_deadline(interval: Interval, config: SuperPinConfig) -> float:
    """Wall-clock deadline for one slice, in host seconds.

    The configurable floor covers fixed costs (payload materialization,
    pool scheduling); the per-instruction allowance scales with the
    master's instruction count for the interval, mirroring how the
    §4.3 runaway guard scales the virtual budget.
    """
    return (config.slice_deadline_floor
            + interval.instructions * config.slice_deadline_per_ins)


def _attempt_slice(payload: bytes, index: int, attempt: int,
                   plan: FaultPlan | None, where: str = "worker") -> bytes:
    """Execute one slice attempt: fault injection, then the real run.

    This is both the pool entry point (``where == "worker"``) and the
    in-process fallback (``where == "inprocess"``) — one code path, so
    a fallback result is bit-identical to a worker result.
    """
    spec = maybe_inject(plan, index, attempt, where)
    if spec is not None and spec.kind is FaultKind.CORRUPT:
        if where == "worker":
            return CORRUPT_BLOB
        raise CorruptResultFault(
            f"injected corrupt result: slice {index} attempt {attempt}")
    blob = _worker_run_slice(payload)
    if spec is not None and spec.kind is FaultKind.TAMPER:
        # Silent corruption: the attempt looks like a clean success to
        # the supervisor; only the -spaudit oracle can catch it.
        blob = tamper_blob(blob)
    return blob


def supervise_slices(timeline: MasterTimeline, signatures: list[Signature],
                     template: SliceToolContext, sp: SPControl,
                     config: SuperPinConfig, tracer=None,
                     metrics=NULL_METRICS, journal=None, preloaded=None,
                     damaged=None, prewarm=None, warm_store=None,
                     on_progress=None) -> SupervisedSlices:
    """Run the slice phase under the configured fault policy.

    With the default ``failfast`` policy, no fault plan and no
    durability hooks this is a thin wrapper over
    :func:`~repro.superpin.parallel.execute_slices` (no supervision
    overhead on the happy path); otherwise the supervised sequential or
    parallel executor runs.  Either way the phase's spans land in
    ``tracer`` and its counters in ``metrics``.

    Durability hooks:

    * ``journal`` — a :class:`~repro.superpin.journal.RunJournal`;
      every successful slice's framed result blob is appended durably.
    * ``preloaded`` — slice index -> framed blob adopted from a resumed
      journal; adopted slices are not re-executed.
    * ``damaged`` — slice index -> the
      :class:`~repro.errors.RecordingCorruptError` a replayed
      recording's load tolerated for that slice (``-spfaults degrade``
      only); these slices are degraded upfront, never attempted.

    Warm-cache hooks (see :mod:`repro.superpin.trace_store`):

    * ``prewarm`` — payload from a persistent-store hit; every slice
      (pilot included) starts warm and the pilot protocol is skipped.
    * ``warm_store`` — the
      :class:`~repro.superpin.sharedcache.WarmTraceStore` the pilot's
      exports fold into, so the runtime can persist the frozen payload.
    * ``on_progress`` — parent-side ``("slice", {completed, total})``
      callback streamed to serve-daemon clients.
    """
    if (config.spfaults == "failfast" and config.fault_plan is None
            and journal is None and not preloaded and not damaged):
        results, timings = execute_slices(timeline, signatures, template,
                                          sp, config, tracer=tracer,
                                          metrics=metrics, prewarm=prewarm,
                                          warm_store=warm_store,
                                          on_progress=on_progress)
        where = "worker" if config.spworkers > 0 else "inprocess"
        outcomes = [
            SliceOutcome(
                index=k, status="ok",
                attempts=[SliceAttempt(number=1, where=where,
                                       seconds=timings[k].total_seconds)],
                deadline_seconds=slice_deadline(interval, config))
            for k, interval in enumerate(timeline.intervals)]
        return SupervisedSlices(results=results, timings=timings,
                                outcomes=outcomes)
    supervisor = _Supervisor(timeline, signatures, template, sp, config,
                             tracer=tracer, metrics=metrics,
                             journal=journal, preloaded=preloaded,
                             damaged=damaged, prewarm=prewarm,
                             warm_store=warm_store,
                             on_progress=on_progress)
    if config.spworkers <= 0:
        return supervisor.run_sequential()
    return supervisor.run_parallel()


@dataclass
class _Flight:
    """Bookkeeping for one in-flight worker attempt."""

    index: int
    attempt: int
    started: float


class _Supervisor:
    """One supervised slice phase: payloads, attempts, policy."""

    def __init__(self, timeline: MasterTimeline,
                 signatures: list[Signature], template: SliceToolContext,
                 sp: SPControl, config: SuperPinConfig, tracer=None,
                 metrics=NULL_METRICS, journal=None, preloaded=None,
                 damaged=None, prewarm=None, warm_store=None,
                 on_progress=None):
        self.sp = sp
        self.config = config
        self.tracer = ensure_tracer(tracer)
        self.metrics = metrics
        self.warm_store = warm_store
        self.on_progress = on_progress
        self._mark = self.tracer.mark()
        self._tracks = TrackAllocator()
        self.plan: FaultPlan | None = config.fault_plan
        self.journal = journal
        self.n_slices = len(timeline.intervals)
        self.outcomes = [
            SliceOutcome(index=k,
                         deadline_seconds=slice_deadline(interval, config))
            for k, interval in enumerate(timeline.intervals)]
        self.results: dict[int, SliceResult] = {}
        # Damaged recording sections degrade their slices upfront: the
        # artifact has no trustworthy spec for them, so they are never
        # attempted — the same hole a degraded execution leaves.
        for k, err in sorted((damaged or {}).items()):
            self.outcomes[k].status = "degraded"
            self.outcomes[k].error = str(err)
            self.metrics.inc("superpin.supervisor.degraded_slices")
            self.tracer.instant("slice.degraded", cat="supervisor",
                                args={"slice": k, "error": str(err)})
        # Journaled results from a resumed run are adopted as-is; a blob
        # that fails to decode is simply re-executed.
        for k, blob in sorted((preloaded or {}).items()):
            if 0 <= k < self.n_slices and self._todo(k):
                self._adopt(k, blob)
        #: Per-slice execution counter — the attempt numbers the fault
        #: plan sees.  Resubmissions after a neighbour's reap re-run the
        #: *same* attempt number (the original never got to finish).
        self.executions = [0] * self.n_slices
        #: Per-slice charged failures; the retry budget compares
        #: against ``spretries``.
        self.failures = [0] * self.n_slices
        self._pool: ProcessPoolExecutor | None = None
        self._timeline = timeline
        self._signatures = signatures
        self._template = template
        #: Warm-cache pilot protocol: slice 0 runs (and, if needed,
        #: retries) to resolution first; its exports freeze the warm
        #: payload baked into every later slice's pickled payload.
        #: Retries re-run the slice's original payload, so a retried
        #: slice automatically re-receives its warm set.  A persistent
        #: trace-store hit (``prewarm``) replaces the protocol wholesale:
        #: every slice — the pilot included — bakes the stored payload
        #: in, so no slice compiles the shared working set cold.
        warmcache = config.spwarmcache
        self._pilot = (warmcache and prewarm is None
                       and self.n_slices > 1)
        self.payloads: list[bytes | None] = [None] * self.n_slices
        if self._pilot:
            if self._pilot_resolved():
                # The pilot arrived from the journal (or was degraded):
                # its exports are intact in the adopted result, so the
                # warm payload freezes without re-running slice 0.
                self._release_rest()
            else:
                self.payloads[0] = self._make_payload(0, warm=None,
                                                      export_warm=True)
        else:
            warm = prewarm if warmcache else None
            for k in range(self.n_slices):
                if self._todo(k):
                    self.payloads[k] = self._make_payload(k, warm=warm)

    def _make_payload(self, k: int, warm=None,
                      export_warm: bool = False) -> bytes:
        return _slice_payload(self._timeline, self._signatures,
                              self._template, self.sp, self.config, k,
                              self.tracer, warm=warm,
                              export_warm=export_warm)

    def _todo(self, k: int) -> bool:
        """True while slice ``k`` still needs an execution attempt."""
        return (k not in self.results
                and self.outcomes[k].status != "degraded")

    def _adopt(self, k: int, blob: bytes) -> bool:
        """Adopt a journaled framed result blob for slice ``k``.

        Returns False (slice re-executes) when the blob does not decode
        — a journal entry survived its checksum but pickles to garbage,
        which only tampering can produce; re-execution is the safe
        response either way.
        """
        try:
            with resolve_shared_areas(self.sp.areas):
                (result, _fork_seconds, _run_seconds,
                 snapshot) = pickle.loads(unframe_blob(blob))
        except Exception:
            return False
        self.metrics.merge(snapshot)
        self.results[k] = result
        self.outcomes[k].attempts.append(
            SliceAttempt(number=0, where="journal", seconds=0.0))
        self.metrics.inc("superpin.journal.resumed_slices")
        self._notify()
        return True

    def _notify(self) -> None:
        """Stream slice completion to the caller (serve daemon hook)."""
        if self.on_progress is not None:
            self.on_progress("slice", {"completed": len(self.results),
                                       "total": self.n_slices})

    def _pilot_resolved(self) -> bool:
        """True once slice 0 has a result or was given up on."""
        return 0 in self.results or self.outcomes[0].status == "degraded"

    def _release_rest(self) -> None:
        """Pilot resolved: freeze the warm payload, build the rest.

        A degraded pilot (no result) freezes an empty payload — later
        slices simply run cold, the same as ``-spwarmcache 0``.
        """
        from .sharedcache import WarmTraceStore
        warm = None
        if 0 in self.results:
            store = self.warm_store if self.warm_store is not None \
                else WarmTraceStore()
            warm = store.fold_pilot(self.results[0])
        for k in range(1, self.n_slices):
            if self._todo(k):
                self.payloads[k] = self._make_payload(k, warm=warm)
        self._pilot = False

    # -- shared bookkeeping ------------------------------------------------

    def _record_success(self, k: int, attempt: int, where: str,
                        seconds: float, blob: bytes) -> None:
        """Decode a result blob and file it; raises if the blob is bad."""
        done_at = self.tracer.now()
        with self.tracer.span("slice.pickle", cat="slice",
                              args={"slice": k, "op": "decode"}):
            with resolve_shared_areas(self.sp.areas):
                try:
                    (result, fork_seconds, run_seconds,
                     snapshot) = pickle.loads(unframe_blob(blob))
                except CorruptResultFault:
                    raise
                except Exception as exc:
                    raise CorruptResultFault(
                        f"slice {k} attempt {attempt} returned an "
                        f"undecodable result blob: {exc}") from exc
        self.metrics.merge(snapshot)
        synthesize_slice_spans(self.tracer, self._tracks, k, done_at,
                               fork_seconds, run_seconds,
                               args={"attempt": attempt, "where": where})
        self.results[k] = result
        self.outcomes[k].attempts.append(
            SliceAttempt(number=attempt, where=where, seconds=seconds))
        self._notify()
        if self.journal is not None:
            # Write-ahead: the framed blob lands durably *before* the
            # run proceeds (appended pre-fold, so an adopted pilot still
            # carries its warm exports on resume).
            self.journal.append(k, blob)

    def _record_failure(self, k: int, attempt: int, where: str,
                        seconds: float, error: BaseException | str,
                        charged: bool = True) -> None:
        self.outcomes[k].attempts.append(
            SliceAttempt(number=attempt, where=where, seconds=seconds,
                         error=str(error), charged=charged))
        now = self.tracer.now()
        self.tracer.add_span(
            "slice.attempt", max(0.0, now - seconds), now, cat="attempt",
            track=self._tracks.place(max(0.0, now - seconds), now),
            args={"slice": k, "attempt": attempt, "where": where,
                  "ok": False, "charged": charged, "error": str(error)})
        if charged:
            self.failures[k] += 1
            self.metrics.inc("superpin.supervisor.failed_attempts")

    def _backoff(self, k: int) -> None:
        base = self.config.slice_retry_backoff
        if base > 0:
            time.sleep(base * (2 ** max(0, self.failures[k] - 1)))

    def _fail_fast(self, k: int, error: BaseException) -> None:
        raise SliceExecutionError(
            f"slice {k} failed under -spfaults failfast: {error}",
            index=k, attempts=self.outcomes[k].attempts) from error

    def _exhausted(self, k: int, error: BaseException) -> None:
        """All attempts spent: raise (retry) or degrade (degrade)."""
        if self.config.spfaults == "retry":
            raise SliceExecutionError(
                f"slice {k} failed after "
                f"{self.outcomes[k].num_attempts} attempts: {error}",
                index=k, attempts=self.outcomes[k].attempts) from error
        self.outcomes[k].status = "degraded"
        self.outcomes[k].error = str(error)
        self.metrics.inc("superpin.supervisor.degraded_slices")
        self.tracer.instant("slice.degraded", cat="supervisor",
                            args={"slice": k, "error": str(error)})

    def _run_inprocess(self, k: int) -> None:
        """Final fallback: one in-process attempt from the payload."""
        self.executions[k] += 1
        attempt = self.executions[k]
        self.metrics.inc("superpin.supervisor.inprocess_fallbacks")
        t0 = time.perf_counter()
        try:
            blob = _attempt_slice(self.payloads[k], k, attempt, self.plan,
                                  where="inprocess")
            self._record_success(k, attempt, "inprocess",
                                 time.perf_counter() - t0, blob)
        except Exception as exc:
            self._record_failure(k, attempt, "inprocess",
                                 time.perf_counter() - t0, exc)
            self._exhausted(k, exc)

    def _finish(self) -> SupervisedSlices:
        ordered = [self.results[k] for k in sorted(self.results)]
        timings = slice_timings_from_records(
            self.tracer.records_since(self._mark), self.n_slices,
            metrics=self.metrics)
        for track in range(1, self._tracks.num_tracks + 1):
            self.tracer.name_track(track, f"slice lane {track}")
        return SupervisedSlices(results=ordered, timings=timings,
                                outcomes=self.outcomes)

    # -- sequential supervision (-spworkers 0) -----------------------------

    def run_sequential(self) -> SupervisedSlices:
        """All attempts in-process, same payload path as the workers.

        The attempt budget matches the parallel ladder (1 initial +
        ``spretries`` retries + 1 fallback) so a fault plan fires on the
        same attempt numbers regardless of worker count.
        """
        for k in range(self.n_slices):
            if not self._todo(k):
                continue
            if self.payloads[k] is None:
                self._release_rest()
            while True:
                self.executions[k] += 1
                attempt = self.executions[k]
                t0 = time.perf_counter()
                try:
                    blob = _attempt_slice(self.payloads[k], k, attempt,
                                          self.plan, where="inprocess")
                    self._record_success(k, attempt, "inprocess",
                                         time.perf_counter() - t0, blob)
                    break
                except Exception as exc:
                    self._record_failure(k, attempt, "inprocess",
                                         time.perf_counter() - t0, exc)
                    if self.config.spfaults == "failfast":
                        self._fail_fast(k, exc)
                    # +1: the parallel ladder's in-process fallback slot.
                    if self.failures[k] > self.config.spretries + 1:
                        self._exhausted(k, exc)
                        break
                    self._backoff(k)
        return self._finish()

    # -- parallel supervision (-spworkers N) -------------------------------

    def run_parallel(self) -> SupervisedSlices:
        self._workers = min(self.config.spworkers, self.n_slices) or 1
        self._pool = ProcessPoolExecutor(max_workers=self._workers)
        # The pilot runs to resolution alone; _release_rest then queues
        # the remaining slices with the frozen warm payload.
        self._pending: deque[int] = deque(
            [0] if self._pilot
            else [k for k in range(self.n_slices) if self._todo(k)])
        self._flights: dict = {}
        try:
            while self._pending or self._flights or self._pilot:
                if self._pilot and self._pilot_resolved():
                    self._release_rest()
                    self._pending.extend(
                        k for k in range(1, self.n_slices)
                        if self._todo(k))
                # Sliding window: at most `workers` futures in flight,
                # so every submitted attempt is (approximately) running
                # and its deadline clock is fair.
                while self._pending and len(self._flights) < self._workers:
                    self._submit(self._pending.popleft())
                if not self._flights:
                    # Everything left was adopted or degraded; loop
                    # around (and usually exit) instead of waiting on
                    # an empty flight set.
                    continue
                timeout = min(
                    max(0.0, self.outcomes[f.index].deadline_seconds
                        - (time.perf_counter() - f.started))
                    for f in self._flights.values())
                done, _ = wait(set(self._flights),
                               timeout=max(timeout, 0.01),
                               return_when=FIRST_COMPLETED)
                if not done:
                    self._reap_expired()
                    continue
                self._process_done(done)
        except BaseException:
            self._teardown(self._pool, self._flights)
            raise
        self._pool.shutdown()
        return self._finish()

    def _submit(self, k: int, attempt: int | None = None) -> None:
        """Launch one worker attempt (new attempt number unless given)."""
        if attempt is None:
            self.executions[k] += 1
            attempt = self.executions[k]
        try:
            future = self._pool.submit(_attempt_slice, self.payloads[k], k,
                                       attempt, self.plan)
        except (BrokenProcessPool, RuntimeError):
            # The pool died between bookkeeping and submit; rebuild and
            # try once more (a second failure propagates).
            self._rebuild_pool()
            future = self._pool.submit(_attempt_slice, self.payloads[k], k,
                                       attempt, self.plan)
        self._flights[future] = _Flight(index=k, attempt=attempt,
                                        started=time.perf_counter())

    def _process_done(self, done) -> None:
        for future in done:
            flight = self._flights.pop(future, None)
            if flight is None:
                continue
            k, attempt = flight.index, flight.attempt
            seconds = time.perf_counter() - flight.started
            try:
                blob = future.result()
                self._record_success(k, attempt, "worker", seconds, blob)
            except BrokenProcessPool as exc:
                # A worker died; every in-flight future died with it and
                # the culprit is unknowable, so all of them are charged
                # and rescheduled (innocents succeed on their next try).
                casualties = [flight] + list(self._flights.values())
                self._flights.clear()
                self._rebuild_pool()
                now = time.perf_counter()
                for casualty in casualties:
                    self._record_failure(
                        casualty.index, casualty.attempt, "worker",
                        min(seconds, now - casualty.started),
                        "worker process died (process pool broken)")
                    self._after_failure(casualty.index, exc)
                return
            except SliceExecutionError:
                raise
            except Exception as exc:
                self._record_failure(k, attempt, "worker", seconds, exc)
                self._after_failure(k, exc)

    def _after_failure(self, k: int, error: BaseException) -> None:
        """Route a charged failure through the policy ladder."""
        if self.config.spfaults == "failfast":
            self._teardown(self._pool, self._flights)
            self._fail_fast(k, error)
        if self.failures[k] <= self.config.spretries:
            self.metrics.inc("superpin.supervisor.retries")
            self.tracer.instant("slice.retry", cat="supervisor",
                                args={"slice": k,
                                      "failures": self.failures[k]})
            self._backoff(k)
            self._pending.append(k)
        else:
            self._run_inprocess(k)

    def _reap_expired(self) -> None:
        """Kill the pool if any in-flight slice blew its deadline.

        A ``ProcessPoolExecutor`` cannot cancel a *running* future, so
        reaping means terminating the worker processes and rebuilding
        the pool.  The expired slice is charged a deadline failure;
        innocent in-flight slices are resubmitted with the same attempt
        number and an untouched retry budget.
        """
        now = time.perf_counter()
        expired, innocent = [], []
        for flight in self._flights.values():
            if (now - flight.started
                    > self.outcomes[flight.index].deadline_seconds):
                expired.append(flight)
            else:
                innocent.append(flight)
        if not expired:
            return
        for flight in expired:
            self.metrics.inc("superpin.supervisor.deadline_hits")
            self.tracer.instant(
                "deadline.reaped", cat="supervisor",
                args={"slice": flight.index, "attempt": flight.attempt,
                      "deadline_seconds":
                          self.outcomes[flight.index].deadline_seconds})
        self._flights.clear()
        self._rebuild_pool()
        for flight in innocent:
            self._record_failure(
                flight.index, flight.attempt, "worker",
                now - flight.started,
                "interrupted by pool teardown (neighbour reaped); "
                "resubmitted", charged=False)
            self._submit(flight.index, attempt=flight.attempt)
        for flight in expired:
            self._record_failure(
                flight.index, flight.attempt, "worker",
                now - flight.started,
                f"deadline exceeded "
                f"({self.outcomes[flight.index].deadline_seconds:.2f}s); "
                f"worker reaped")
            deadline = self.outcomes[flight.index].deadline_seconds
            self._after_failure(
                flight.index,
                TimeoutError(f"slice {flight.index} missed its "
                             f"{deadline:.2f}s deadline"))

    def _rebuild_pool(self) -> None:
        self.metrics.inc("superpin.supervisor.pool_rebuilds")
        self.tracer.instant("pool.rebuild", cat="supervisor")
        self._teardown(self._pool, None, kill=True)
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    @staticmethod
    def _teardown(pool, flights, kill: bool = True) -> None:
        """Shut a pool down promptly: cancel queued work, kill workers.

        ``shutdown(cancel_futures=True)`` alone would wait for running
        (possibly hung) workers, so the worker processes are terminated
        first.  Touches the executor's ``_processes`` map — internal,
        but stable across supported CPythons — and degrades to a plain
        prompt shutdown if it ever disappears.
        """
        if pool is None:
            return
        if flights:
            for future in flights:
                future.cancel()
        processes = []
        if kill:
            try:
                processes = list((getattr(pool, "_processes", None)
                                  or {}).values())
                for process in processes:
                    process.terminate()
            except Exception:
                processes = []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except Exception:
                pass
