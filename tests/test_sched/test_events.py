"""Event simulation: the paper's §3 timing semantics."""

import pytest

from repro.isa import assemble
from repro.machine import Kernel
from repro.sched import CostModel, MachineModel
from repro.superpin import run_superpin, SuperPinConfig
from repro.tools import ICount1, ICount2
from tests.conftest import MULTISLICE


def _report(config=None, machine=None, cost=None, tool_cls=ICount2,
            source=MULTISLICE, seed=42):
    program = assemble(source)
    return run_superpin(
        program, tool_cls(),
        config or SuperPinConfig(spmsec=500, clock_hz=10_000),
        kernel=Kernel(seed=seed),
        machine=machine or MachineModel(),
        cost=cost or CostModel())


class TestBreakdown:
    def test_components_sum_to_total(self):
        timing = _report().timing
        assert sum(timing.breakdown().values()) \
            == pytest.approx(timing.total_cycles)

    def test_simulation_is_deterministic(self):
        t1 = _report().timing
        t2 = _report().timing
        assert t1.total_cycles == t2.total_cycles
        assert [s.completed_at for s in t1.spans] \
            == [s.completed_at for s in t2.spans]

    def test_master_finish_before_total(self):
        timing = _report().timing
        assert timing.master_finish_cycles <= timing.total_cycles
        assert timing.pipeline_cycles >= 0


class TestSliceScheduling:
    def test_slice_k_runnable_after_slice_k1_forked(self):
        timing = _report().timing
        spans = timing.spans
        for k in range(len(spans) - 1):
            assert spans[k].runnable_at >= spans[k + 1].forked_at

    def test_last_slice_runnable_at_master_exit(self):
        timing = _report().timing
        assert timing.spans[-1].runnable_at \
            == pytest.approx(timing.master_finish_cycles)

    def test_merges_in_slice_order(self):
        timing = _report().timing
        merges = [s.merged_at for s in timing.spans]
        assert merges == sorted(merges)

    def test_completion_after_runnable(self):
        timing = _report().timing
        for span in timing.spans:
            assert span.completed_at > span.runnable_at


class TestRunnableAtExactness:
    """Span wake times are reported exactly, not via truthiness checks
    (``value or 0.0`` would clobber a legitimate falsy wake time)."""

    def test_runnable_follows_fork_by_signature_record(self):
        cost = CostModel(signature_record=123.0)
        spans = _report(cost=cost).timing.spans
        assert len(spans) >= 3
        for k in range(len(spans) - 1):
            assert spans[k].runnable_at \
                == pytest.approx(spans[k + 1].forked_at + 123.0)

    def test_zero_signature_record_wake_preserved(self):
        """With a free signature record the wake time equals the next
        fork's completion exactly — including when that value is small
        enough that a truthiness test would have discarded it."""
        cost = CostModel(signature_record=0.0)
        spans = _report(cost=cost).timing.spans
        for k in range(len(spans) - 1):
            assert spans[k].runnable_at \
                == pytest.approx(spans[k + 1].forked_at)
            assert spans[k].runnable_at > 0.0


class TestSpmpGating:
    def test_spmp1_serializes(self):
        """-spmp 1: slices run one at a time; total approaches the
        serial instrumented time (Figure 7's left edge)."""
        serial = _report(SuperPinConfig(spmsec=500, clock_hz=10_000,
                                        spmp=1), tool_cls=ICount1)
        wide = _report(SuperPinConfig(spmsec=500, clock_hz=10_000,
                                      spmp=8), tool_cls=ICount1)
        t1, t8 = serial.timing, wide.timing
        assert t1.max_concurrent_slices <= 2
        assert t1.sleep_cycles > 0
        assert t1.total_cycles > 1.5 * t8.total_cycles

    def test_more_slots_never_slower(self):
        totals = []
        for spmp in (1, 2, 4, 8):
            report = _report(SuperPinConfig(spmsec=500, clock_hz=10_000,
                                            spmp=spmp), tool_cls=ICount1)
            totals.append(report.timing.total_cycles)
        assert totals == sorted(totals, reverse=True)

    def test_concurrency_bounded_by_spmp(self):
        for spmp in (2, 4):
            report = _report(SuperPinConfig(spmsec=500, clock_hz=10_000,
                                            spmp=spmp), tool_cls=ICount1)
            assert report.timing.max_concurrent_slices <= spmp


class TestPipelineDelayFormula:
    def test_not_fully_loaded_tail_near_f_plus_1_s(self):
        """Paper §3: with light instrumentation the pipeline delay is
        about (F+1)*s where F is the max simultaneous slices."""
        config = SuperPinConfig(spmsec=1000, clock_hz=10_000)
        report = _report(config, tool_cls=ICount2)
        timing = report.timing
        s = config.timeslice_cycles
        f = timing.max_concurrent_slices
        # The tail is dominated by the final slice's instrumented
        # re-execution of one timeslice: within a small factor of
        # (F+1)*s, and never less than one slice's work.
        assert s * 0.5 <= timing.pipeline_cycles <= (f + 3) * s * 3

    def test_tail_scales_with_timeslice(self):
        tails = []
        for msec in (250, 500, 1000):
            config = SuperPinConfig(spmsec=msec, clock_hz=10_000)
            tails.append(_report(config).timing.pipeline_cycles)
        assert tails[0] < tails[-1]


class TestCostModelMonotonicity:
    def test_heavier_analysis_cost_slows_superpin(self):
        cheap = _report(cost=CostModel(analysis_call=2.0)).timing
        dear = _report(cost=CostModel(analysis_call=40.0)).timing
        assert dear.total_cycles > cheap.total_cycles

    def test_native_time_independent_of_instrumentation(self):
        a = _report(cost=CostModel(analysis_call=2.0)).timing
        b = _report(cost=CostModel(analysis_call=40.0)).timing
        assert a.native_cycles == b.native_cycles


class TestCostModelFormulas:
    def test_native_cycles(self):
        cost = CostModel(cpi=1.0, syscall_native=20.0)
        assert cost.native_cycles(1000, 5) == 1100

    def test_fork_cycles(self):
        cost = CostModel(fork_base=100.0, fork_per_page=2.0)
        assert cost.fork_cycles(50) == 200

    def test_pin_cycles_accumulates_all_terms(self):
        cost = CostModel()
        base = cost.pin_cycles(1000, 0, 0, 0, 0, 0, 0)
        more = cost.pin_cycles(1000, 1, 1, 1, 1, 1, 1)
        assert more > base
