"""Metrics registry: recording, snapshots, cross-process merging."""

from repro.obs import (HistogramSummary, MetricsRegistry, metrics_for,
                       NULL_METRICS)


class TestRecording:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.inc("a", 4)
        assert metrics.counter("a") == 5
        assert metrics.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("depth", 3)
        metrics.set_gauge("depth", 1)
        assert metrics.gauge("depth") == 1

    def test_histograms_summarize(self):
        metrics = MetricsRegistry()
        for value in (5.0, 1.0, 3.0):
            metrics.observe("lat", value)
        hist = metrics.histogram("lat")
        assert (hist.count, hist.total) == (3, 9.0)
        assert (hist.min, hist.max) == (1.0, 5.0)
        assert hist.mean == 3.0

    def test_empty_histogram_mean(self):
        assert HistogramSummary().mean == 0.0


class TestMerge:
    def _worker(self, counts, observations):
        registry = MetricsRegistry()
        for name, value in counts:
            registry.inc(name, value)
        for name, value in observations:
            registry.observe(name, value)
        return registry.snapshot()

    def test_snapshot_is_plain_data(self):
        import pickle
        snap = self._worker([("a", 2)], [("h", 1.0)])
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_counter_merge_is_order_independent(self):
        snaps = [self._worker([("a", i), ("b", 1)], [("h", float(i))])
                 for i in (1, 2, 3)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.counters == backward.counters == {"a": 6, "b": 3}
        assert (forward.histogram("h").as_dict()
                == backward.histogram("h").as_dict()
                == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0})

    def test_merge_none_is_noop(self):
        metrics = MetricsRegistry()
        metrics.inc("a")
        metrics.merge(None)
        metrics.merge({})
        assert metrics.counters == {"a": 1}


class TestNullMetrics:
    def test_metrics_for_dispatch(self):
        assert metrics_for(False) is NULL_METRICS
        live = metrics_for(True)
        assert isinstance(live, MetricsRegistry)
        assert live is not metrics_for(True)

    def test_null_registry_records_nothing(self):
        NULL_METRICS.inc("a", 5)
        NULL_METRICS.set_gauge("g", 1.0)
        NULL_METRICS.observe("h", 2.0)
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.snapshot() is None
        assert NULL_METRICS.histogram("h") is None
