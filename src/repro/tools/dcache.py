"""Data-cache simulator SuperTool (paper §5.2).

A direct-mapped data cache driven by every memory access.  This is the
paper's worked example of converting a tool with *cross-slice
dependences* to SuperPin using the §4.5 recipe:

1. **Assume**: the first access to each cache set inside a slice is
   assumed to be a hit, and the assumed line is specially recorded.
2. **Track**: the slice also tracks its own final tag per touched set.
3. **Reconcile**: at merge time (slice order), each assumption is
   compared with the authoritative cache state left by the previous
   slices; wrong assumptions convert one hit into one miss.  Then the
   slice's final tags overwrite the authoritative state.

For a direct-mapped cache the reconciliation is *exact*: whether the
first access to a set hits or misses, the set ends up holding that line,
so every subsequent access in the slice is unaffected.  The test suite
asserts exact equality with the serial-Pin cache simulation.
"""

from __future__ import annotations

from ..pin.args import (IARG_END, IARG_MEMORYREAD_EA, IARG_MEMORYWRITE_EA,
                        IPOINT_BEFORE)
from ..pin.pintool import Pintool


class DCacheSim(Pintool):
    """Direct-mapped data-cache hit/miss simulator."""

    name = "dcache"

    def __init__(self, sets: int = 256, line_words: int = 8):
        self.sets = sets
        self.line_words = line_words
        self.hits = 0
        self.misses = 0
        #: set index -> resident line address (slice-local view).
        self.tags: dict[int, int] = {}
        #: set index -> line assumed present on the slice's first access.
        self.assumed: dict[int, int] = {}
        self.shared = None
        self._sp_mode = False

    # -- analysis -------------------------------------------------------------

    def access(self, ea: int) -> None:
        line = ea // self.line_words
        index = line % self.sets
        tags = self.tags
        resident = tags.get(index)
        if resident == line:
            self.hits += 1
            return
        if resident is None and self._sp_mode and index not in self.assumed:
            # First touch of this set in the slice: assume a hit and
            # remember the assumption for reconciliation (§5.2).
            self.assumed[index] = line
            self.hits += 1
            tags[index] = line
            return
        self.misses += 1
        tags[index] = line

    # -- SuperPin lifecycle ---------------------------------------------------

    def tool_reset(self, slice_num: int) -> None:
        self.hits = 0
        self.misses = 0
        self.tags = {}
        self.assumed = {}

    def merge(self, slice_num: int, value) -> None:
        """Reconcile assumptions against the authoritative cache state.

        ``self.shared`` must be indexed here rather than captured as the
        payload dict: the area object survives the per-slice tool copy
        (it is shared memory), while a plain dict reference would be
        deep-copied with the tool and the merge would update a private
        copy.
        """
        shared = self.shared[0]
        state: dict[int, int] = shared["state"]
        for index, line in self.assumed.items():
            if state.get(index) != line:
                self.hits -= 1
                self.misses += 1
        state.update(self.tags)
        shared["hits"] += self.hits
        shared["misses"] += self.misses
        shared["slices"] += 1

    def setup(self, sp) -> None:
        self._sp_mode = sp.SP_Init(self.tool_reset)
        payload = {"hits": 0, "misses": 0, "state": {}, "slices": 0}
        area = sp.SP_CreateSharedArea([None], 1, 0)
        if hasattr(area, "merge_from"):
            area[0] = payload  # SuperPin: payload lives in shared memory
            self.shared = area
        else:
            self.shared = [payload]
        sp.SP_AddSliceEndFunction(self.merge, 0)

    def instrument_trace(self, trace, vm) -> None:
        for ins in trace.instructions:
            if ins.is_memory_read:
                ins.insert_call(IPOINT_BEFORE, self.access,
                                IARG_MEMORYREAD_EA, IARG_END)
            elif ins.is_memory_write:
                ins.insert_call(IPOINT_BEFORE, self.access,
                                IARG_MEMORYWRITE_EA, IARG_END)

    def fini(self) -> None:
        shared = self.shared[0]
        if shared["slices"] == 0:
            # Plain Pin mode: nothing merged; fold the local counters in.
            shared["hits"] += self.hits
            shared["misses"] += self.misses
            shared["state"].update(self.tags)
            self.hits = 0
            self.misses = 0

    # -- results --------------------------------------------------------------

    @property
    def total_hits(self) -> int:
        return self.shared[0]["hits"]

    @property
    def total_misses(self) -> int:
        return self.shared[0]["misses"]

    @property
    def miss_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_misses / total if total else 0.0

    def report(self) -> dict:
        return {
            "hits": self.total_hits,
            "misses": self.total_misses,
            "miss_rate": self.miss_rate,
            "sets": self.sets,
            "line_words": self.line_words,
        }
