"""Ablation: copy-on-write fork vs eager address-space copy.

DESIGN.md calls out COW forking as the mechanism that keeps SuperPin's
per-boundary cost proportional to the *written* working set rather than
the whole address space.  This bench measures both for real (host wall
time) and checks the functional cost counters.
"""


from repro.machine import Memory, PAGE_WORDS

PAGES = 256


def _populated() -> Memory:
    mem = Memory()
    for i in range(PAGES):
        mem.write(i * PAGE_WORDS, i + 1)
    return mem


def test_cow_fork_speed(benchmark):
    mem = _populated()
    child = benchmark(mem.fork)
    assert child.resident_pages == PAGES
    assert child.pages_copied == 0


def test_eager_copy_speed(benchmark):
    mem = _populated()
    clone = benchmark(mem.deep_copy)
    assert clone.pages_copied == PAGES


def test_cow_cost_proportional_to_writes():
    """A slice touching k pages pays k page copies, not PAGES."""
    mem = _populated()
    child = mem.fork()
    touched = 7
    for i in range(touched):
        child.write(i * PAGE_WORDS + 3, 99)
    assert child.cow_faults == touched
    assert child.cow_faults < PAGES // 10


def test_superpin_fork_faults_bounded():
    """End to end: slices' COW faults stay far below the resident set."""
    from repro.machine import Kernel
    from repro.superpin import run_superpin, SuperPinConfig
    from repro.tools import ICount2
    from repro.workloads import build

    built = build("mcf", scale=0.1)  # big working set
    report = run_superpin(built.program, ICount2(),
                          SuperPinConfig(spmsec=1000),
                          kernel=Kernel(seed=42))
    for result in report.slices:
        resident = report.timeline.boundaries[
            result.index].resident_pages
        assert result.cow_faults <= resident
