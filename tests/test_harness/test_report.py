"""ASCII report rendering."""

from repro.harness import bar_chart, format_table, render_figure, \
    stacked_chart
from repro.harness.figures import FigureData


class TestTable:
    def test_alignment_and_separator(self):
        text = format_table(["name", "value"],
                            [["alpha", 1.5], ["b", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "-" in lines[1]
        assert "alpha" in lines[2]

    def test_numbers_right_aligned(self):
        text = format_table(["n", "v"], [["x", 5], ["yy", 123]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("  5".rstrip()) or "  5" in rows[0]
        assert "123" in rows[1]

    def test_duplicate_rows_do_not_crash(self):
        text = format_table(["a"], [["x"], ["x"]])
        assert text.count("x") == 2


class TestCharts:
    def test_bar_lengths_proportional(self):
        text = bar_chart(["a", "b"], [10.0, 5.0], width=20)
        bars = [line.count("#") for line in text.splitlines()]
        assert bars[0] == 20 and bars[1] == 10

    def test_zero_value_has_no_bar(self):
        text = bar_chart(["a", "b"], [0.0, 4.0])
        assert "#" not in text.splitlines()[0]

    def test_stacked_chart_has_legend(self):
        text = stacked_chart(
            ["0.5s"], {"native": [10.0], "pipeline": [5.0]})
        assert "legend" in text.splitlines()[0]
        assert "=" in text and "p" in text


class TestRenderFigure:
    def test_full_rendering(self):
        data = FigureData(
            figure="4", title="demo",
            headers=["benchmark", "speedup_x"],
            rows=[["gzip", 5.0], ["AVG", 5.0]],
            notes=["check"])
        text = render_figure(data)
        assert "Figure 4: demo" in text
        assert "gzip" in text
        assert "note: check" in text
        assert "#" in text  # chart present

    def test_unknown_figure_renders_table_only(self):
        data = FigureData(figure="x", title="t", headers=["a"],
                          rows=[["1"]])
        text = render_figure(data)
        assert "Figure x" in text


class TestGantt:
    @staticmethod
    def _timing():
        from repro.isa import assemble
        from repro.machine import Kernel
        from repro.superpin import run_superpin, SuperPinConfig
        from repro.tools import ICount2
        from tests.conftest import MULTISLICE
        report = run_superpin(assemble(MULTISLICE), ICount2(),
                              SuperPinConfig(spmsec=500, clock_hz=10_000),
                              kernel=Kernel(seed=42))
        return report.timing

    def test_figure1_shape(self):
        """The rendered schedule shows the paper's Figure 1 structure:
        staggered forks, sleep-then-run slices, ordered merges."""
        from repro.harness import gantt_chart
        timing = self._timing()
        text = gantt_chart(timing, width=60)
        lines = text.splitlines()
        assert "legend" in lines[0]
        assert lines[1].strip().startswith("master")
        slice_rows = [line for line in lines if "S" in line and "#" in line]
        assert len(slice_rows) == len(timing.spans)
        # Every slice sleeps before running (a '.' precedes the '#'s)
        # except possibly ones forked right at a signature.
        sleeping = sum(1 for row in slice_rows if "." in row)
        assert sleeping >= len(slice_rows) - 1
        # Merge markers appear and move rightward in slice order.
        merge_cols = [row.index("|") for row in slice_rows if "|" in row]
        assert merge_cols == sorted(merge_cols)

    def test_gantt_width_respected(self):
        from repro.harness import gantt_chart
        text = gantt_chart(self._timing(), width=40)
        for line in text.splitlines():
            assert len(line) <= 40 + 12  # label + indent margin
