"""Dynamic opcode-mix profiler.

Counts executed instructions per opcode.  Uses an ADD-mode auto-merged
shared area — the zero-tool-code merge path of ``SP_CreateSharedArea``:
the runtime itself folds each slice's counter vector into the shared
region, so the tool registers *no* slice-end function at all.
"""

from __future__ import annotations

from ..isa.instructions import Op
from ..pin.args import IARG_END, IPOINT_BEFORE
from ..pin.pintool import Pintool
from ..superpin.sharedmem import AutoMerge

#: Counter-vector length (opcode values are < 128 by construction).
_VECTOR_LEN = 128


class OpcodeMix(Pintool):
    """Per-opcode dynamic execution counts."""

    name = "opcodemix"

    def __init__(self):
        self.counts: list[int] = [0] * _VECTOR_LEN
        self.shared = None

    def bump(self, opnum: int) -> None:
        self.counts[opnum] += 1

    def tool_reset(self, slice_num: int) -> None:
        for i in range(_VECTOR_LEN):
            self.counts[i] = 0

    def setup(self, sp) -> None:
        sp.SP_Init(self.tool_reset)
        area = sp.SP_CreateSharedArea(self.counts, _VECTOR_LEN,
                                      AutoMerge.ADD)
        self.shared = area if hasattr(area, "merge_from") else None

    def instrument_trace(self, trace, vm) -> None:
        from ..pin.api import INS_MatchesFilter
        for ins in trace.instructions:
            # Per-instruction filter check keeps the counted set stable
            # across serial and sliced trace shapes.  The opcode is
            # static; fold it into the argument list and declare the
            # affine summary form for loop suppression.
            if not INS_MatchesFilter(ins, self.instrument_filter):
                continue
            bump, bump_summary = self.bump_factory(int(ins.op))
            ins.insert_summarized_call(IPOINT_BEFORE, bump, bump_summary,
                                       IARG_END)

    def bump_factory(self, opnum: int):
        counts = self.counts

        def bump() -> None:
            counts[opnum] += 1

        def bump_summary(iterations: int) -> None:
            counts[opnum] += iterations
        return bump, bump_summary

    # -- results --------------------------------------------------------------

    def vector(self) -> list[int]:
        if self.shared is not None:
            return list(self.shared.data)
        return list(self.counts)

    def mix(self) -> dict[str, int]:
        """Opcode name -> dynamic count (only non-zero entries)."""
        vector = self.vector()
        return {Op(i).name.lower(): count
                for i, count in enumerate(vector)
                if count and i in Op._value2member_map_}

    @property
    def total(self) -> int:
        return sum(self.vector())

    def report(self) -> dict:
        return {"total": self.total, "mix": self.mix()}
