"""Host-side throughput micro-benchmarks (real wall time).

Not a paper figure: these track the reproduction's own engine costs —
native interpretation vs JIT-compiled execution vs instrumented
execution — the ratios that make whole-suite figure regeneration
tractable.
"""

from repro.isa import assemble
from repro.machine import Kernel, load_program
from repro.machine.interpreter import Interpreter
from repro.pin import PinVM
from repro.tools import ICount1, ICount2
from repro.pin.pintool import NullSuperPin

HOT_LOOP = """
.entry main
main:
    li   t0, 0
    li   t1, 60000
lp:
    addi t0, t0, 1
    add  t2, t2, t0
    st   t2, 0x8000(zero)
    ld   t3, 0x8000(zero)
    bne  t0, t1, lp
    li   a0, SYS_EXIT
    li   a1, 0
    syscall
"""


def _program():
    return assemble(HOT_LOOP)


def test_interpreter_throughput(benchmark):
    program = _program()

    def run():
        process = load_program(program, Kernel())
        interp = Interpreter(process)
        interp.run(max_instructions=10_000_000)
        return interp.total_instructions

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3


def test_pinvm_uninstrumented_throughput(benchmark):
    program = _program()

    def run():
        process = load_program(program, Kernel())
        vm = PinVM(process)
        return vm.run().instructions

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3


def test_pinvm_unlinked_throughput(benchmark):
    """Dispatcher-dict-only dispatch (-splinktraces 0) against the
    linked default above; test_dispatch_overhead.py breaks the gap
    down by transition counts."""
    program = _program()

    def run():
        process = load_program(program, Kernel())
        vm = PinVM(process, link_traces=False)
        return vm.run().instructions

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3


def test_pinvm_icount2_throughput(benchmark):
    program = _program()

    def run():
        process = load_program(program, Kernel())
        vm = PinVM(process)
        tool = ICount2()
        tool.setup(NullSuperPin())
        tool.activate(vm)
        vm.run()
        tool.fini()
        return tool.total

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3


def test_pinvm_icount1_throughput(benchmark):
    program = _program()

    def run():
        process = load_program(program, Kernel())
        vm = PinVM(process)
        tool = ICount1()
        tool.setup(NullSuperPin())
        tool.activate(vm)
        vm.run()
        tool.fini()
        return tool.total

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3


def test_pyjit_source_backend_throughput(benchmark):
    """The generated-code backend vs the threaded-code backend."""
    program = _program()

    def run():
        process = load_program(program, Kernel())
        vm = PinVM(process, jit_backend="source")
        return vm.run().instructions

    count = benchmark(run)
    assert count == 2 + 60000 * 5 + 3
